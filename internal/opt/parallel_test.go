package opt

import (
	"math"
	"testing"
	"time"

	"repro/internal/model"
)

// Differential tests pinning the parallel engine against the serial naive
// reference: same status, same optimum, and — across worker counts — the
// identical placement selected by the deterministic tie-break (DESIGN.md §9).

func samePlacement(a, b model.Placement) bool {
	if len(a.X) != len(b.X) {
		return false
	}
	for i := range a.X {
		if len(a.X[i]) != len(b.X[i]) {
			return false
		}
		for k := range a.X[i] {
			if a.X[i][k] != b.X[i][k] {
				return false
			}
		}
	}
	return true
}

func TestEngineMatchesNaive(t *testing.T) {
	sizes := [][3]int{{3, 3, 3}, {4, 6, 3}}
	for _, sz := range sizes {
		for seed := int64(1); seed <= 3; seed++ {
			in := testInstance(sz[0], sz[1], sz[2], seed)
			limit := 60 * time.Second
			naive, err := Solve(in, Options{TimeLimit: limit, Naive: true})
			if err != nil {
				t.Fatal(err)
			}
			w1, err := Solve(in, Options{TimeLimit: limit, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			w4, err := Solve(in, Options{TimeLimit: limit, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if naive.Status != w1.Status || naive.Status != w4.Status {
				t.Fatalf("size=%v seed=%d: status naive=%v w1=%v w4=%v",
					sz, seed, naive.Status, w1.Status, w4.Status)
			}
			if naive.Status != Optimal {
				continue
			}
			if math.Abs(naive.StarObjective-w1.StarObjective) > 1e-9 ||
				math.Abs(naive.StarObjective-w4.StarObjective) > 1e-9 {
				t.Fatalf("size=%v seed=%d: objective naive=%v w1=%v w4=%v",
					sz, seed, naive.StarObjective, w1.StarObjective, w4.StarObjective)
			}
			if !samePlacement(w1.Placement, w4.Placement) {
				t.Fatalf("size=%v seed=%d: worker count changed the incumbent placement", sz, seed)
			}
		}
	}
}

// The work-stealing scheduler (default) and the fixed-frontier scheduler
// (Options.StaticFrontier) must return identical results for any worker
// count: scheduling is not allowed to leak into the search result.
func TestEngineStaticFrontierMatchesSteal(t *testing.T) {
	sizes := [][3]int{{3, 3, 3}, {4, 6, 3}}
	for _, sz := range sizes {
		for seed := int64(1); seed <= 3; seed++ {
			in := testInstance(sz[0], sz[1], sz[2], seed)
			for _, workers := range []int{1, 4} {
				steal, err := Solve(in, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				static, err := Solve(in, Options{Workers: workers, StaticFrontier: true})
				if err != nil {
					t.Fatal(err)
				}
				if steal.Status != static.Status {
					t.Fatalf("size=%v seed=%d workers=%d: status steal=%v static=%v",
						sz, seed, workers, steal.Status, static.Status)
				}
				if steal.Status != Optimal {
					continue
				}
				if math.Abs(steal.StarObjective-static.StarObjective) > 1e-9 {
					t.Fatalf("size=%v seed=%d workers=%d: objective steal=%v static=%v",
						sz, seed, workers, steal.StarObjective, static.StarObjective)
				}
				if !samePlacement(steal.Placement, static.Placement) {
					t.Fatalf("size=%v seed=%d workers=%d: scheduler changed the incumbent placement",
						sz, seed, workers)
				}
			}
		}
	}
}

// Warm starts must not perturb the engine's optimum (they may only help
// pruning), for any worker count.
func TestEngineWarmStartConsistent(t *testing.T) {
	in := testInstance(4, 6, 3, 2)
	cold, err := Solve(in, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != Optimal {
		t.Skipf("instance not solved to optimality: %v", cold.Status)
	}
	warm, err := Solve(in, Options{Workers: 2, WarmStart: &cold.Placement})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != Optimal || math.Abs(warm.StarObjective-cold.StarObjective) > 1e-9 {
		t.Fatalf("warm start changed the optimum: %v/%v vs %v/%v",
			warm.Status, warm.StarObjective, cold.Status, cold.StarObjective)
	}
}

// Engine must honor the global limits across workers and never claim
// optimality after aborting.
func TestEngineLimitsRespected(t *testing.T) {
	in := testInstance(8, 20, 6, 4)
	res, err := Solve(in, Options{MaxNodes: 10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes > 10 {
		t.Fatalf("node limit ignored: %d", res.Nodes)
	}
	if res.Status != Feasible && res.Status != NoSolution {
		t.Fatalf("status = %v after node-limit abort", res.Status)
	}

	tl, err := Solve(in, Options{TimeLimit: time.Millisecond, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Status == Optimal && tl.Elapsed > 500*time.Millisecond {
		t.Fatalf("time limit ignored: %v", tl.Elapsed)
	}
}

// Infeasible instances must be reported identically by both paths.
func TestEngineInfeasibleMatchesNaive(t *testing.T) {
	in := testInstance(4, 5, 3, 2)
	in.Budget = 1
	for _, naiveFlag := range []bool{true, false} {
		res, err := Solve(in, Options{Naive: naiveFlag, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Infeasible {
			t.Fatalf("naive=%v: status = %v, want infeasible", naiveFlag, res.Status)
		}
	}
}
