// Package partition implements Algorithm 1 of the SoCL paper: region-based
// initial partitioning. For every microservice m_i it collects the edge
// servers hosting requests for m_i (V(m_i)), reconnects them through virtual
// links whose channel speed 𝔹(l') is the harmonic mean of the physical links
// on the shortest path, keeps virtual links stronger than a threshold ξ, and
// groups the nodes into connected components. Each group is then extended
// with candidate nodes — servers that host no requests for m_i themselves
// but, per the proactive factor Δ (Eq. 12) and the degree condition of
// Theorem 1 (ℋ > 2), would reduce the group's completion time if m_i were
// provisioned on them.
package partition

import (
	"math"
	"sort"

	"repro/internal/model"
)

// Config controls partitioning.
type Config struct {
	// Xi is the virtual-link speed threshold ξ (GB/s). Links with
	// 𝔹(l') > ξ survive. When Xi <= 0, the threshold is chosen per service
	// as the XiQuantile-quantile of its virtual-link speeds.
	Xi         float64
	XiQuantile float64 // used when Xi <= 0; default 0.5 (median)
}

// DefaultConfig returns auto-thresholding at the median.
func DefaultConfig() Config { return Config{Xi: 0, XiQuantile: 0.5} }

// Group is one partition p_s(m_i): demand-hosting members plus elected
// candidate nodes.
type Group struct {
	// Members are the demand nodes of the group (subset of V(m_i)), sorted.
	Members []int
	// Candidates are elected proactive nodes (Δ < 0, ℋ > 2), sorted.
	Candidates []int
}

// Nodes returns members followed by candidates.
func (g *Group) Nodes() []int {
	out := make([]int, 0, len(g.Members)+len(g.Candidates))
	out = append(out, g.Members...)
	out = append(out, g.Candidates...)
	return out
}

// ServicePartition is 𝒫(m_i): the groups for one microservice.
type ServicePartition struct {
	Service int
	Groups  []Group
	// Demand[k] is r_k: the number of requests for the service homed at
	// node k (zero for nodes without demand).
	Demand map[int]int
	// XiUsed is the threshold actually applied for this service.
	XiUsed float64
}

// GroupOf returns the index of the group containing node k (member or
// candidate), or -1.
func (sp *ServicePartition) GroupOf(k int) int {
	for s := range sp.Groups {
		for _, n := range sp.Groups[s].Members {
			if n == k {
				return s
			}
		}
		for _, n := range sp.Groups[s].Candidates {
			if n == k {
				return s
			}
		}
	}
	return -1
}

// Result is the initial partition 𝒫 for all microservices.
type Result struct {
	ByService map[int]*ServicePartition
	// Chi[k] is the communication intensity χ_{v_k} = Σ_q 𝔹(l'_{k,q}).
	Chi []float64
}

// Build runs Algorithm 1 on the instance.
func Build(in *model.Instance, cfg Config) *Result {
	if cfg.XiQuantile <= 0 || cfg.XiQuantile >= 1 {
		cfg.XiQuantile = 0.5
	}
	g := in.Graph
	V := g.N()

	// Precompute communication intensity χ for every node.
	chi := make([]float64, V)
	for k := 0; k < V; k++ {
		for q := 0; q < V; q++ {
			if q == k {
				continue
			}
			if v := g.VirtualSpeed(k, q); !math.IsInf(v, 1) {
				chi[k] += v
			}
		}
	}

	res := &Result{ByService: make(map[int]*ServicePartition), Chi: chi}
	for _, svc := range in.Workload.ServicesUsed() {
		res.ByService[svc] = buildService(in, svc, chi, cfg)
	}
	return res
}

func buildService(in *model.Instance, svc int, chi []float64, cfg Config) *ServicePartition {
	g := in.Graph
	nodes := in.Workload.NodesRequesting(svc) // V(m_i), sorted

	sp := &ServicePartition{Service: svc, Demand: make(map[int]int)}
	for _, k := range nodes {
		sp.Demand[k] = in.Workload.DemandCount(k, svc)
	}

	// Virtual-link speeds among demand nodes.
	var links []vlink
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			s := g.VirtualSpeed(nodes[i], nodes[j])
			if s > 0 && !math.IsInf(s, 1) {
				links = append(links, vlink{nodes[i], nodes[j], s})
			}
		}
	}

	xi := cfg.Xi
	if xi <= 0 {
		xi = quantileSpeed(links, cfg.XiQuantile)
	}
	sp.XiUsed = xi

	// Union-find over demand nodes with links 𝔹 > ξ.
	idx := make(map[int]int, len(nodes))
	for i, k := range nodes {
		idx[k] = i
	}
	parent := make([]int, len(nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, l := range links {
		if l.speed > xi {
			ra, rb := find(idx[l.a]), find(idx[l.b])
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	groupsByRoot := map[int][]int{}
	for i, k := range nodes {
		r := find(i)
		groupsByRoot[r] = append(groupsByRoot[r], k)
	}
	var roots []int
	for r := range groupsByRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		members := groupsByRoot[r]
		sort.Ints(members)
		sp.Groups = append(sp.Groups, Group{Members: members})
	}

	electCandidates(in, sp, chi)
	return sp
}

// vlink is a virtual link between two demand nodes with its harmonic-mean
// channel speed 𝔹(l').
type vlink struct {
	a, b  int
	speed float64
}

// quantileSpeed returns the q-quantile of virtual-link speeds (0 when no
// links exist, which leaves every node in its own group).
func quantileSpeed(links []vlink, q float64) float64 {
	if len(links) == 0 {
		return 0
	}
	speeds := make([]float64, len(links))
	for i, l := range links {
		speeds[i] = l.speed
	}
	sort.Float64s(speeds)
	pos := int(q * float64(len(speeds)-1))
	return speeds[pos]
}

// electCandidates implements lines 8–14 of Algorithm 1: for each group,
// scan non-demand nodes with degree ℋ > 2 (Theorem 1) and admit those whose
// proactive factor Δ (Eq. 12), checked against group members in ascending
// communication-intensity order, is negative.
func electCandidates(in *model.Instance, sp *ServicePartition, chi []float64) {
	g := in.Graph
	inService := map[int]bool{}
	for k := range sp.Demand {
		inService[k] = true
	}
	for s := range sp.Groups {
		group := &sp.Groups[s]
		// Members ordered by ascending χ (argmin χ first) — cheap-to-reach
		// members are the likeliest to make Δ negative.
		ordered := append([]int(nil), group.Members...)
		sort.Slice(ordered, func(i, j int) bool { return chi[ordered[i]] < chi[ordered[j]] })

		for k := 0; k < g.N(); k++ {
			if inService[k] {
				continue
			}
			if g.Degree(k) <= 2 { // Theorem 1: ℋ(v) > 2 required
				continue
			}
			// Δ^k < 0 against the first member that certifies it; stop at
			// the first success (early-exit of lines 13-14).
			for _, a := range ordered {
				if delta(in, sp, group, k, a) < 0 {
					group.Candidates = append(group.Candidates, k)
					break
				}
			}
		}
		sort.Ints(group.Candidates)
	}
}

// delta computes Δ^η (Eq. 12): the completion-time deviation of serving the
// group from candidate node eta versus from member a.
func delta(in *model.Instance, sp *ServicePartition, group *Group, eta, a int) float64 {
	g := in.Graph
	viaEta, viaA := 0.0, 0.0
	for _, vi := range group.Members {
		r := float64(sp.Demand[vi])
		if vi != eta {
			viaEta += r * safeCost(g.PathCost(vi, eta))
		}
		if vi != a {
			viaA += r * safeCost(g.PathCost(vi, a))
		}
	}
	return viaEta - viaA
}

func safeCost(c float64) float64 {
	if math.IsInf(c, 1) {
		return 1e12
	}
	return c
}
