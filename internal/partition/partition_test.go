package partition

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/topology"
)

// starInstance builds a 5-node star: center 0 with degree 4 (candidate-
// eligible), leaves 1..4. Two services: svc a demanded at leaves 1,2 (one
// user each); svc b demanded at leaf 3.
func starInstance(t *testing.T) *model.Instance {
	t.Helper()
	g := topology.New(5)
	for i := 0; i < 5; i++ {
		g.AddNode(0, 0, 10, 8)
	}
	for leaf := 1; leaf <= 4; leaf++ {
		if err := g.AddLink(0, leaf, 50); err != nil {
			t.Fatal(err)
		}
	}
	g.Finalize()

	cat := msvc.NewCatalog()
	a, _ := cat.Add("a", 100, 1, 1)
	b, _ := cat.Add("b", 100, 1, 1)
	cat.AddFlow([]msvc.ServiceID{a, b})

	w := &msvc.Workload{Catalog: cat, Requests: []msvc.Request{
		{ID: 0, Home: 1, Chain: []int{a}, DataIn: 1, DataOut: 1, Deadline: math.Inf(1)},
		{ID: 1, Home: 2, Chain: []int{a}, DataIn: 1, DataOut: 1, Deadline: math.Inf(1)},
		{ID: 2, Home: 3, Chain: []int{b}, DataIn: 1, DataOut: 1, Deadline: math.Inf(1)},
	}}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e6}
}

func TestBuildStarBasics(t *testing.T) {
	in := starInstance(t)
	res := Build(in, DefaultConfig())
	if len(res.ByService) != 2 {
		t.Fatalf("services partitioned = %d", len(res.ByService))
	}
	spA := res.ByService[0]
	if spA == nil {
		t.Fatal("service 0 missing")
	}
	// Demand counts.
	if spA.Demand[1] != 1 || spA.Demand[2] != 1 {
		t.Fatalf("demand = %v", spA.Demand)
	}
	// All demand nodes appear in exactly one group.
	seen := map[int]int{}
	for _, grp := range spA.Groups {
		for _, k := range grp.Members {
			seen[k]++
		}
	}
	if seen[1] != 1 || seen[2] != 1 || len(seen) != 2 {
		t.Fatalf("membership = %v", seen)
	}
}

func TestCandidateElectionOnStarCenter(t *testing.T) {
	in := starInstance(t)
	// Force a single group for service a by using a permissive threshold.
	res := Build(in, Config{Xi: 1e-9})
	spA := res.ByService[0]
	if len(spA.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 (leaves 1,2 joined via center)", len(spA.Groups))
	}
	// Center node 0 has degree 4 > 2 and lies between the two demand
	// leaves: serving both from 0 costs 2 transfers where serving from
	// member 1 costs 1 transfer of the other leaf's demand. Δ(0 vs 1) =
	// (r1/𝔹(1,0)+r2/𝔹(2,0)) − r2/𝔹(2,1) = (0.02+0.02) − 0.04 = 0 → not <0,
	// so the center must NOT be elected here.
	for _, c := range spA.Groups[0].Candidates {
		if c == 0 {
			t.Fatal("center elected despite Δ = 0")
		}
	}
	// Leaves 3,4 have degree 1 → never candidates.
	for _, grp := range spA.Groups {
		for _, c := range grp.Candidates {
			if in.Graph.Degree(c) <= 2 {
				t.Fatalf("candidate %d has degree ≤ 2", c)
			}
		}
	}
}

// asymmetric star: center reachable at high speed, leaf-to-leaf paths slow,
// so the center strictly improves Δ.
func TestCandidateElectedWhenBeneficial(t *testing.T) {
	g := topology.New(6)
	for i := 0; i < 6; i++ {
		g.AddNode(0, 0, 10, 8)
	}
	// Demand leaves 1,2,3 hang off center 0 with fast links; there is also
	// a slow "ring" 1-2, 2-3 so leaves connect without the center.
	must := func(a, b int, rate float64) {
		if err := g.AddLink(a, b, rate); err != nil {
			panic(err)
		}
	}
	must(0, 1, 100)
	must(0, 2, 100)
	must(0, 3, 100)
	must(0, 4, 100) // degree filler → ℋ(0) = 5
	must(0, 5, 100)
	must(1, 2, 1) // slow direct leaf links
	must(2, 3, 1)
	g.Finalize()

	cat := msvc.NewCatalog()
	a, _ := cat.Add("a", 100, 1, 1)
	cat.AddFlow([]msvc.ServiceID{a})
	w := &msvc.Workload{Catalog: cat, Requests: []msvc.Request{
		{ID: 0, Home: 1, Chain: []int{a}, DataIn: 1, DataOut: 1, Deadline: math.Inf(1)},
		{ID: 1, Home: 2, Chain: []int{a}, DataIn: 1, DataOut: 1, Deadline: math.Inf(1)},
		{ID: 2, Home: 3, Chain: []int{a}, DataIn: 1, DataOut: 1, Deadline: math.Inf(1)},
	}}
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e6}

	res := Build(in, Config{Xi: 1e-9}) // one group
	sp := res.ByService[0]
	if len(sp.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(sp.Groups))
	}
	found := false
	for _, c := range sp.Groups[0].Candidates {
		if c == 0 {
			found = true
		}
	}
	if !found {
		// From center: (1+1+1)/100 per leaf = 0.03. From member 1: leaves
		// 2,3 pay 2/100+... all paths go through 0 anyway at 2 hops → 0.02
		// each = 0.04 > 0.03, so Δ < 0 and 0 must be elected.
		t.Fatalf("beneficial center not elected; candidates = %v", sp.Groups[0].Candidates)
	}
}

func TestHighThresholdSingletons(t *testing.T) {
	in := starInstance(t)
	res := Build(in, Config{Xi: 1e12}) // filter everything
	spA := res.ByService[0]
	if len(spA.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 singletons", len(spA.Groups))
	}
	for _, grp := range spA.Groups {
		if len(grp.Members) != 1 {
			t.Fatalf("group members = %v", grp.Members)
		}
	}
}

func TestGroupOf(t *testing.T) {
	in := starInstance(t)
	res := Build(in, DefaultConfig())
	sp := res.ByService[0]
	for s, grp := range sp.Groups {
		for _, k := range grp.Members {
			if sp.GroupOf(k) != s {
				t.Fatalf("GroupOf(%d) = %d, want %d", k, sp.GroupOf(k), s)
			}
		}
	}
	if sp.GroupOf(4) != -1 {
		t.Fatal("non-member node reported in a group")
	}
}

func TestChiComputed(t *testing.T) {
	in := starInstance(t)
	res := Build(in, DefaultConfig())
	if len(res.Chi) != in.V() {
		t.Fatalf("chi length = %d", len(res.Chi))
	}
	// Center 0 has the direct fast link to everyone → highest χ.
	for k := 1; k < in.V(); k++ {
		if res.Chi[k] > res.Chi[0] {
			t.Fatalf("χ[%d]=%v > χ[0]=%v", k, res.Chi[k], res.Chi[0])
		}
	}
}

func randomInstance(seed int64) *model.Instance {
	g := topology.RandomGeometric(10, 0.35, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(25), seed)
	if err != nil {
		panic(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e6}
}

// Property: partitioning is a cover of V(m_i) — every demand node appears
// in exactly one group as a member, candidates never carry demand, and
// candidates always satisfy the degree condition.
func TestPartitionInvariants(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed)
		res := Build(in, DefaultConfig())
		for _, svc := range in.Workload.ServicesUsed() {
			sp := res.ByService[svc]
			if sp == nil {
				return false
			}
			want := in.Workload.NodesRequesting(svc)
			count := map[int]int{}
			for _, grp := range sp.Groups {
				for _, k := range grp.Members {
					count[k]++
				}
				for _, c := range grp.Candidates {
					if sp.Demand[c] > 0 {
						return false // demand node elected as candidate
					}
					if in.Graph.Degree(c) <= 2 {
						return false // Theorem 1 violated
					}
				}
			}
			if len(count) != len(want) {
				return false
			}
			for _, k := range want {
				if count[k] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: raising ξ never decreases the number of groups (monotone
// refinement).
func TestXiMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := randomInstance(seed)
		low := Build(in, Config{Xi: 1e-9})
		high := Build(in, Config{Xi: 40})
		for _, svc := range in.Workload.ServicesUsed() {
			if len(high.ByService[svc].Groups) < len(low.ByService[svc].Groups) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// twoIslandInstance builds a substrate of two disconnected 3-node triangles
// with demand on both islands — the degenerate input a sharded pipeline can
// produce when a region's backhaul is cut.
func twoIslandInstance(t *testing.T) *model.Instance {
	t.Helper()
	g := topology.New(6)
	for i := 0; i < 6; i++ {
		g.AddNode(float64(i), 0, 10, 8)
	}
	for _, tri := range [][3]int{{0, 1, 2}, {3, 4, 5}} {
		for i := 0; i < 3; i++ {
			if err := g.AddLink(tri[i], tri[(i+1)%3], 50); err != nil {
				t.Fatal(err)
			}
		}
	}
	g.Finalize()

	cat := msvc.NewCatalog()
	a, _ := cat.Add("a", 100, 1, 1)
	cat.AddFlow([]msvc.ServiceID{a})
	w := &msvc.Workload{Catalog: cat, Requests: []msvc.Request{
		{ID: 0, Home: 0, Chain: []int{a}, DataIn: 1, DataOut: 1, Deadline: math.Inf(1)},
		{ID: 1, Home: 1, Chain: []int{a}, DataIn: 1, DataOut: 1, Deadline: math.Inf(1)},
		{ID: 2, Home: 4, Chain: []int{a}, DataIn: 1, DataOut: 1, Deadline: math.Inf(1)},
	}}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e6}
}

// Build on a disconnected substrate must still cover every demand node and
// must never group nodes across components (their χ distance is infinite).
func TestBuildDisconnectedSubstrate(t *testing.T) {
	in := twoIslandInstance(t)
	res := Build(in, DefaultConfig())
	sp := res.ByService[0]
	if sp == nil {
		t.Fatal("service 0 missing")
	}
	count := map[int]int{}
	for _, grp := range sp.Groups {
		island := -1
		for _, k := range grp.Members {
			count[k]++
			comp := 0
			if k >= 3 {
				comp = 1
			}
			if island == -1 {
				island = comp
			} else if island != comp {
				t.Fatalf("group %v spans both components", grp.Members)
			}
		}
	}
	for _, k := range []int{0, 1, 4} {
		if count[k] != 1 {
			t.Fatalf("demand node %d appears %d times, want 1 (membership %v)", k, count[k], count)
		}
	}
	if len(count) != 3 {
		t.Fatalf("membership %v covers %d nodes, want 3", count, len(count))
	}
}

// Build on a single-node substrate: one group, one member, no candidates.
func TestBuildSingleNodeRegion(t *testing.T) {
	g := topology.New(1)
	g.AddNode(0, 0, 10, 8)
	g.Finalize()
	cat := msvc.NewCatalog()
	a, _ := cat.Add("a", 100, 1, 1)
	cat.AddFlow([]msvc.ServiceID{a})
	w := &msvc.Workload{Catalog: cat, Requests: []msvc.Request{
		{ID: 0, Home: 0, Chain: []int{a}, DataIn: 1, DataOut: 1, Deadline: math.Inf(1)},
	}}
	in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e6}
	res := Build(in, DefaultConfig())
	sp := res.ByService[0]
	if sp == nil {
		t.Fatal("service 0 missing")
	}
	if len(sp.Groups) != 1 || len(sp.Groups[0].Members) != 1 || sp.Groups[0].Members[0] != 0 {
		t.Fatalf("groups = %+v, want one single-member group on node 0", sp.Groups)
	}
	if len(sp.Groups[0].Candidates) != 0 {
		t.Fatalf("single node elected candidates %v", sp.Groups[0].Candidates)
	}
}

// Property: on every shard sub-instance sliced from a clustered substrate,
// each service's groups exactly partition the shard's demand nodes — the
// per-shard precondition the sharded combine relies on.
func TestBuildPartitionsShardNodesProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, regions := topology.Clustered(topology.DefaultClusterConfig(4, 6), seed)
		cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
		wcfg := msvc.DefaultWorkloadConfig(40)
		wcfg.DeadlineSlack = 0
		wcfg.Hotspot = 0
		w, err := msvc.GenerateWorkload(cat, g, wcfg, seed)
		if err != nil {
			return false
		}
		in := &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 1e6}
		for _, region := range regions {
			var reqs []int
			inRegion := map[int]bool{}
			for _, v := range region {
				inRegion[v] = true
			}
			for h, req := range w.Requests {
				if inRegion[req.Home] {
					reqs = append(reqs, h)
				}
			}
			si, err := model.NewShardInstance(in, region, len(region), reqs, len(reqs))
			if err != nil {
				return false
			}
			res := Build(si.Sub, DefaultConfig())
			for _, svc := range si.Sub.Workload.ServicesUsed() {
				sp := res.ByService[svc]
				if sp == nil {
					return false
				}
				want := si.Sub.Workload.NodesRequesting(svc)
				count := map[int]int{}
				for _, grp := range sp.Groups {
					for _, k := range grp.Members {
						count[k]++
					}
				}
				if len(count) != len(want) {
					return false
				}
				for _, k := range want {
					if count[k] != 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
