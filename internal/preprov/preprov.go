// Package preprov implements Algorithm 2 of the SoCL paper: instance
// pre-provisioning. Starting from the region-based initial partition, it
// derives a budget-based bound on the instance count of each microservice
// (N̄(m_i) = min{|V(m_i)|, ⌊(𝒦^max − 𝒦^ι(m_i))/κ(m_i)⌋}), allocates each
// partition a quota proportional to its demand share ε_s(m_i), and places
// instances either on every group node (when the quota covers the group) or
// greedily by instance contribution 𝔻 (Eq. 13) otherwise.
package preprov

import (
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/partition"
)

// Result carries the pre-provisioned placement 𝒫^t plus the per-service
// bound N̄ used, for inspection and for the combination stage.
type Result struct {
	Placement model.Placement
	// Bound[svc] is N̄(m_i); only populated for used services.
	Bound map[int]int
	// Quota[svc][group] is the (fractional) quota ε_s·N̄ assigned.
	Quota map[int][]float64
}

// Run executes Algorithm 2. The resulting placement deploys every used
// microservice at least once (service continuity), so downstream routing is
// always defined; it may exceed the budget — trimming instances to meet
// 𝒦^max is the combination stage's job (Algorithm 3, large-scale loop).
func Run(in *model.Instance, part *partition.Result) *Result {
	res := &Result{
		Placement: model.NewPlacement(in.M(), in.V()),
		Bound:     make(map[int]int),
		Quota:     make(map[int][]float64),
	}
	cat := in.Workload.Catalog

	// 𝒦^ι(m_i): the budget irrevocably claimed by one instance of every
	// other used microservice (each used service needs ≥ 1 instance).
	used := in.Workload.ServicesUsed()
	totalKappa := 0.0
	for _, svc := range used {
		totalKappa += cat.Service(svc).DeployCost
	}

	for _, svc := range used {
		sp := part.ByService[svc]
		if sp == nil {
			continue
		}
		kappa := cat.Service(svc).DeployCost
		iota := totalKappa - kappa // Σ_{j≠i} κ(m_j)
		nu := int(math.Floor((in.Budget - iota) / kappa))
		if nu < 1 {
			nu = 1 // service continuity: never bound below one instance
		}
		numDemand := len(sp.Demand)
		bound := numDemand
		if nu < bound {
			bound = nu
		}
		if bound < 1 {
			bound = 1
		}
		res.Bound[svc] = bound

		// Demand share ε_s per group.
		groupDemand := make([]float64, len(sp.Groups))
		total := 0.0
		for s, grp := range sp.Groups {
			for _, k := range grp.Members {
				groupDemand[s] += float64(sp.Demand[k])
			}
			total += groupDemand[s]
		}
		quotas := make([]float64, len(sp.Groups))
		for s := range quotas {
			if total > 0 {
				quotas[s] = groupDemand[s] / total * float64(bound)
			}
		}
		res.Quota[svc] = quotas

		for s := range sp.Groups {
			provisionGroup(in, sp, s, quotas[s], res.Placement)
		}

		// Guard: ε_s·N̄ < 1 for every group can leave a service with zero
		// instances (all loop bodies skipped). Deploy one instance at the
		// globally best-contribution node so constraint (9) stays
		// satisfiable.
		if res.Placement.Count(svc) == 0 {
			bestK, bestD := -1, math.Inf(1)
			for s := range sp.Groups {
				for _, k := range sp.Groups[s].Nodes() {
					if d := contribution(in, sp, s, k); d < bestD {
						bestD, bestK = d, k
					}
				}
			}
			if bestK >= 0 {
				res.Placement.Set(svc, bestK, true)
			}
		}
	}
	return res
}

// provisionGroup implements lines 8–14 for one partition p_s(m_i):
// full coverage when the quota suffices, otherwise contribution-greedy
// selection of ⌈quota⌉-bounded instance sites.
func provisionGroup(in *model.Instance, sp *partition.ServicePartition, s int, quota float64, p model.Placement) {
	grp := &sp.Groups[s]
	nodes := grp.Nodes() // members then candidates
	if quota >= float64(len(nodes)) {
		for _, k := range nodes {
			p.Set(sp.Service, k, true)
		}
		return
	}
	// Order all group nodes by ascending 𝔻 (Eq. 13): smaller estimated
	// group completion time → more attractive host.
	type scored struct {
		k int
		d float64
	}
	list := make([]scored, 0, len(nodes))
	for _, k := range nodes {
		list = append(list, scored{k, contribution(in, sp, s, k)})
	}
	sort.Slice(list, func(i, j int) bool {
		//socllint:ignore floateq exact compare keeps the order strict-weak; an epsilon would break sort transitivity
		if list[i].d != list[j].d {
			return list[i].d < list[j].d
		}
		return list[i].k < list[j].k
	})
	target := int(quota) // ⌊ε_s·N̄⌋ iterations of the while loop
	for i := 0; i < target && i < len(list); i++ {
		p.Set(sp.Service, list[i].k, true)
	}
}

// contribution computes 𝔻_{p_s(m_i)}(v_k) (Eq. 13): the estimated group
// completion time with v_k as the sole host — remote members' demand-
// weighted transfer plus local compute time.
func contribution(in *model.Instance, sp *partition.ServicePartition, s int, k int) float64 {
	g := in.Graph
	grp := &sp.Groups[s]
	d := in.Workload.Catalog.Service(sp.Service).Compute / g.Node(k).Compute
	for _, vi := range grp.Members {
		if vi == k {
			continue
		}
		c := g.PathCost(vi, k)
		if math.IsInf(c, 1) {
			c = 1e12
		}
		d += float64(sp.Demand[vi]) * c
	}
	return d
}
