package preprov

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/partition"
	"repro/internal/topology"
)

func buildInstance(nodes, users int, seed int64, budget float64) *model.Instance {
	g := topology.RandomGeometric(nodes, 0.35, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(users), seed)
	if err != nil {
		panic(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: budget}
}

func TestRunCoversEveryUsedService(t *testing.T) {
	in := buildInstance(10, 30, 1, 8000)
	part := partition.Build(in, partition.DefaultConfig())
	res := Run(in, part)
	for _, svc := range in.Workload.ServicesUsed() {
		if res.Placement.Count(svc) == 0 {
			t.Fatalf("service %d has no instance after pre-provisioning", svc)
		}
	}
	// Placement only on nodes belonging to the service's partition groups.
	for _, svc := range in.Workload.ServicesUsed() {
		sp := part.ByService[svc]
		for _, k := range res.Placement.NodesOf(svc) {
			if sp.GroupOf(k) == -1 {
				t.Fatalf("service %d placed on node %d outside its partition", svc, k)
			}
		}
	}
}

func TestBoundsRespectBudgetFormula(t *testing.T) {
	in := buildInstance(10, 30, 2, 8000)
	part := partition.Build(in, partition.DefaultConfig())
	res := Run(in, part)
	cat := in.Workload.Catalog
	used := in.Workload.ServicesUsed()
	totalKappa := 0.0
	for _, svc := range used {
		totalKappa += cat.Service(svc).DeployCost
	}
	for _, svc := range used {
		bound := res.Bound[svc]
		if bound < 1 {
			t.Fatalf("bound for %d is %d", svc, bound)
		}
		numDemand := len(in.Workload.NodesRequesting(svc))
		if bound > numDemand {
			t.Fatalf("bound %d exceeds |V(m_i)| = %d", bound, numDemand)
		}
		// Instance count per service never exceeds its bound... except the
		// full-coverage branch can deploy on candidates too; cap is
		// members+candidates. At minimum it must have ≥1.
		if res.Placement.Count(svc) == 0 {
			t.Fatalf("service %d uncovered", svc)
		}
	}
}

func TestTightBudgetLimitsInstances(t *testing.T) {
	// Budget exactly one instance of each service: every bound must be 1.
	in := buildInstance(10, 40, 3, 1)
	in.Budget = in.Workload.Catalog.TotalDeployCost() * 0.999
	part := partition.Build(in, partition.DefaultConfig())
	res := Run(in, part)
	for _, svc := range in.Workload.ServicesUsed() {
		if res.Bound[svc] != 1 {
			t.Fatalf("bound for %d = %d, want 1 under tight budget", svc, res.Bound[svc])
		}
		if got := res.Placement.Count(svc); got > 1 {
			t.Fatalf("service %d deployed %d times under bound 1", svc, got)
		}
	}
}

func TestGenerousBudgetCoversDemandNodes(t *testing.T) {
	in := buildInstance(8, 40, 4, 1e9)
	part := partition.Build(in, partition.DefaultConfig())
	res := Run(in, part)
	for _, svc := range in.Workload.ServicesUsed() {
		demandNodes := in.Workload.NodesRequesting(svc)
		// Bound = |V(m_i)| and every group quota ≥ its member count when
		// groups' demand shares are proportional... at minimum, total
		// instances should be ≥ 1 and ≤ members+candidates.
		cnt := res.Placement.Count(svc)
		if cnt < 1 {
			t.Fatalf("service %d uncovered", svc)
		}
		maxNodes := 0
		for _, grp := range part.ByService[svc].Groups {
			maxNodes += len(grp.Nodes())
		}
		if cnt > maxNodes {
			t.Fatalf("service %d has %d instances over %d possible sites", svc, cnt, maxNodes)
		}
		_ = demandNodes
	}
}

func TestQuotaSumsToBound(t *testing.T) {
	in := buildInstance(10, 30, 5, 8000)
	part := partition.Build(in, partition.DefaultConfig())
	res := Run(in, part)
	for _, svc := range in.Workload.ServicesUsed() {
		sum := 0.0
		for _, q := range res.Quota[svc] {
			sum += q
		}
		if diff := sum - float64(res.Bound[svc]); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("service %d: Σquota = %v, bound = %d", svc, sum, res.Bound[svc])
		}
	}
}

// Property: pre-provisioning is deterministic and always yields a placement
// with no missing instances for the evaluator.
func TestPreprovisionProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := buildInstance(8, 20, seed, 7000)
		part := partition.Build(in, partition.DefaultConfig())
		r1 := Run(in, part)
		r2 := Run(in, part)
		for i := 0; i < in.M(); i++ {
			for k := 0; k < in.V(); k++ {
				if r1.Placement.Has(i, k) != r2.Placement.Has(i, k) {
					return false
				}
			}
		}
		ev := in.Evaluate(r1.Placement)
		return ev.MissingInstances == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
