package repair

import (
	"reflect"
	"testing"

	"repro/internal/baselines"
	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/topology"
)

// TestColdAwareMatchesNaive pins Config.Naive equivalence for the warm-aware
// engine: the cold-start surcharge is computed outside the scorer, so the
// delta and scratch paths must keep making bitwise-identical decisions when a
// ColdStartModel is charged into the probe scores.
func TestColdAwareMatchesNaive(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		in := testInstance(t, 8, 25, seed)
		p := baselines.JDR(in)
		m := chaos.NewMask(in.Graph)
		for _, ev := range faultsOf(t, chaos.NodeCrash, in, p) {
			if err := m.Apply(ev); err != nil {
				t.Fatal(err)
			}
		}
		// Warm exactly the pre-fault deployment: everything else is cold, so
		// restoration onto fresh nodes pays the surcharge.
		cs := model.NewColdStartModel(in.M(), in.V(), 0.75)
		cs.SyncWarm(p)

		cfg := DefaultConfig()
		cfg.ColdStart = cs
		fast := Run(in, m, p, cfg)
		cfg.Naive = true
		ref := Run(in, m, p, cfg)

		if !reflect.DeepEqual(fast.Added, ref.Added) {
			t.Fatalf("seed %d: cold-aware adds diverge: %v vs naive %v", seed, fast.Added, ref.Added)
		}
		if !reflect.DeepEqual(fast.Evicted, ref.Evicted) {
			t.Fatalf("seed %d: cold-aware evictions diverge: %v vs naive %v", seed, fast.Evicted, ref.Evicted)
		}
		if !reflect.DeepEqual(fast.Placement, ref.Placement) {
			t.Fatalf("seed %d: cold-aware repaired placements diverge", seed)
		}
		if fast.RolledBack != ref.RolledBack {
			t.Fatalf("seed %d: roll-back counts diverge: %d vs naive %d", seed, fast.RolledBack, ref.RolledBack)
		}
	}
}

// coldTieFixture is a symmetric substrate where restoring a crashed service
// onto node 1 and node 2 scores an exact tie: node 0 (the request home) lacks
// the storage, node 3 (the pre-fault host) is down, and nodes 1 and 2 are
// bitwise-interchangeable — same compute, same storage, same link rate to the
// home. The warm-blind engine resolves the tie first-wins to the lower node
// ID.
func coldTieFixture(t *testing.T) (*model.Instance, *chaos.Mask, model.Placement) {
	t.Helper()
	g := topology.New(4)
	g.AddNode(0, 0, 10, 5)   // node 0: home, too small to host the service
	g.AddNode(1, 0, 10, 50)  // node 1: tie candidate (lower ID)
	g.AddNode(-1, 0, 10, 50) // node 2: tie candidate (higher ID)
	g.AddNode(0, 1, 10, 50)  // node 3: pre-fault host, will crash
	for _, l := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}} {
		if err := g.AddLink(l[0], l[1], 2.0); err != nil {
			t.Fatal(err)
		}
	}
	g.Finalize()

	cat := msvc.NewCatalog()
	if _, err := cat.Add("svc", 10, 2, 10); err != nil {
		t.Fatal(err)
	}
	in := &model.Instance{
		Graph: g,
		Workload: &msvc.Workload{Catalog: cat, Requests: []msvc.Request{
			{ID: 0, Home: 0, Chain: []int{0}, DataIn: 0.5, DataOut: 0.25, Deadline: 1e9},
		}},
		Lambda: 0.5,
		Budget: 100,
	}
	p := model.NewPlacement(cat.Len(), g.N())
	p.Set(0, 3, true)

	m := chaos.NewMask(g)
	if err := m.Apply(chaos.Event{Kind: chaos.NodeCrash, Node: 3}); err != nil {
		t.Fatal(err)
	}
	return in, m, p
}

// TestColdAwareWarmWinsTie: on the symmetric fixture the warm-blind engine
// restores onto node 1 (lowest ID wins the exact tie); with a ColdStartModel
// that marks node 2 warm and node 1 cold, the warm node wins the tie it
// previously lost — on both scorer paths.
func TestColdAwareWarmWinsTie(t *testing.T) {
	for _, naive := range []bool{false, true} {
		in, m, p := coldTieFixture(t)

		cfg := DefaultConfig()
		cfg.Naive = naive
		blind := Run(in, m, p, cfg)
		wantBlind := []chaos.Inst{{Svc: 0, Node: 1}}
		if !reflect.DeepEqual(blind.Added, wantBlind) {
			t.Fatalf("naive=%v: warm-blind adds = %v, want %v (fixture is not a tie?)", naive, blind.Added, wantBlind)
		}
		if blind.After.Unserved() != 0 {
			t.Fatalf("naive=%v: warm-blind repair left %d unserved", naive, blind.After.Unserved())
		}

		cs := model.NewColdStartModel(in.M(), in.V(), 0.75)
		for k := 0; k < in.V(); k++ {
			cs.SetCold(0, k, k != 2) // only node 2 is warm
		}
		cfg.ColdStart = cs
		warm := Run(in, m, p, cfg)
		wantWarm := []chaos.Inst{{Svc: 0, Node: 2}}
		if !reflect.DeepEqual(warm.Added, wantWarm) {
			t.Fatalf("naive=%v: warm-aware adds = %v, want %v", naive, warm.Added, wantWarm)
		}
		if warm.After.Unserved() != 0 {
			t.Fatalf("naive=%v: warm-aware repair left %d unserved", naive, warm.After.Unserved())
		}
	}
}
