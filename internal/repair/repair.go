// Package repair is the incremental placement-repair engine: given a fault
// mask over the substrate (internal/chaos) and the placement that was serving
// before the faults, it restores service without a full re-solve. The repair
// pipeline is
//
//  1. damage classification — instances lost to crashed nodes
//     (Mask.MaskPlacement), nodes whose masked storage capacity the surviving
//     placement now violates (Eq. 6), and budget overruns (Eq. 5);
//  2. eviction — while some node over-fills its shrunk capacity, or the
//     deployment exceeds the budget, remove the instance whose removal leaves
//     the best repair score (ties to the lowest service/node, first-wins
//     under a strict ObjTol margin);
//  3. re-provision, in two phases. Restoration first: for each request the
//     damaged placement cannot serve at all, probe placing its missing chain
//     services together on one up node (a single tentative bundle, scored
//     and rolled back) and commit the best bundle that strictly improves the
//     repair score — single adds cannot cross the valley when a request
//     needs several services back at once. Then refinement: greedily add
//     single instances of the damaged services wherever the score strictly
//     improves, Algorithm-5 style. All candidates are filtered to up nodes
//     with storage and budget headroom on the masked substrate.
//
// Plain Eq. 3/8 objective comparison cannot drive this repair: one unserved
// request puts +Inf into the latency sum, every candidate ties at +Inf, and
// greedy improvement stalls. Candidates are therefore ordered by a
// lexicographic repair score — fewer unserved requests first, then the exact
// objective over the served remainder (see score).
//
// Requests whose services cannot be re-provisioned (no feasible node, budget
// exhausted) degrade exactly as the evaluator dictates: to the cloud when
// the instance has a cloud config (ErrNoInstance discipline), otherwise they
// are reported honestly as MissingInstances/Unroutable — repair never hides
// damage, it minimizes it.
//
// Scoring goes through one of two interchangeable paths. The default binds a
// model.DeltaEvaluator to the masked instance and pays only incremental
// re-routing per probe; Config.Naive re-scores every probe with a scratch
// Instance.EvaluateRouted on a cloned placement — the full re-solve-routing
// reference. Both paths enumerate candidates identically and the delta
// engine's evaluations are documented bit-identical to scratch evaluation,
// so the two produce bitwise-identical repairs; the differential tests pin
// exactly that.
//
// A Result is stamped with the mask epoch it was computed at; once the mask
// moves (the next fault slot), the result is stale and repair must run
// again. Under the soclinvariants build tag every finished repair is
// re-checked against Eq. 4–6 on the masked substrate
// (invariant.CheckPostRepair).
package repair

import (
	"math"

	"repro/internal/chaos"
	"repro/internal/invariant"
	"repro/internal/model"
)

// Config parameterizes one repair run.
type Config struct {
	// Naive switches scoring from the incremental DeltaEvaluator to scratch
	// full evaluations of cloned placements — the full re-solve-routing
	// reference path. Decisions are bitwise identical; only cost differs.
	Naive bool
	// Mode is the routing mode repairs are scored under.
	Mode model.RoutingMode
	// Seed feeds RouteModeRandom's per-request streams (unused otherwise).
	Seed int64
	// MaxAdds caps re-provisioned instances per run; 0 means unlimited
	// (termination is still guaranteed: every accepted candidate strictly
	// improves the lexicographic repair score, which is bounded below). The
	// cap is checked between commits, so a restoration bundle committed just
	// under the cap may finish past it.
	MaxAdds int
	// ColdStart, when non-nil, makes both re-provision phases warm-aware:
	// every candidate add — restoration bundle or refinement single — is
	// charged ColdStart.Delay on the probe score's objective for each added
	// instance whose (svc, node) coordinate the model marks cold. Two
	// otherwise-tied candidates therefore resolve toward the already-warm
	// node instead of the lowest node ID, and a cold candidate must beat a
	// warm one by more than the cold-start price to win. The surcharge is a
	// deployment-decision prior computed outside the scorer, identically on
	// the delta and Naive paths, so Config.Naive equivalence is preserved
	// (pinned by test). Nil keeps every decision bitwise identical to the
	// warm-blind engine. This is distinct from Instance.ColdStart, which
	// prices cold steps inside the routed latency itself: the daemon passes
	// its lifecycle model through both seams.
	ColdStart *model.ColdStartModel
}

// coldPenalty is the warm-preference surcharge for one candidate add.
func (cfg Config) coldPenalty(svc, node int) float64 {
	if cfg.ColdStart == nil || !cfg.ColdStart.IsCold(svc, node) {
		return 0
	}
	return cfg.ColdStart.Delay
}

// coldPenaltyBundle sums the surcharge over a restoration bundle.
func (cfg Config) coldPenaltyBundle(adds []chaos.Inst) float64 {
	pen := 0.0
	for _, a := range adds {
		pen += cfg.coldPenalty(a.Svc, a.Node)
	}
	return pen
}

// DefaultConfig scores under exact optimal routing with the delta engine.
func DefaultConfig() Config { return Config{Mode: model.RouteModeOptimal} }

// Damage is the classification of what the active faults broke.
type Damage struct {
	// Lost are the instances that sat on crashed nodes, ascending (svc, node).
	Lost []chaos.Inst
	// StorageViolated are nodes whose masked capacity the surviving placement
	// exceeds (Eq. 6), ascending.
	StorageViolated []int
	// OverBudget reports an Eq. 5 violation of the surviving placement
	// (possible only when the pre-fault placement already exceeded budget,
	// since losing instances never raises cost).
	OverBudget bool
}

// Result is one finished repair.
type Result struct {
	Damage Damage
	// Placement is the repaired placement (valid on the masked substrate and,
	// by construction, only mutated away from the pre-fault placement on
	// crashed/evicted/added coordinates).
	Placement model.Placement
	// Before evaluates the surviving (masked, unrepaired) placement; After
	// evaluates the repaired one. Both are exact evaluations on the masked
	// substrate.
	Before, After *model.Evaluation
	// Evicted lists instances removed to restore Eq. 5/6; Added lists
	// re-provisioned instances, in commit order.
	Evicted, Added []chaos.Inst
	// RolledBack counts tentatively-applied re-provision candidates that were
	// scored and reverted rather than committed (the Algorithm-5 roll-backs).
	RolledBack int
	// Epoch is the mask epoch the repair was computed at; the result is
	// stale as soon as Mask.Epoch() moves past it.
	Epoch uint64
}

// score is the lexicographic repair objective: first minimize the requests
// the placement cannot serve at all (the +Inf latency classes — missing
// without a cloud, and unroutable), then the exact Eq. 3/8 objective over
// the served remainder. It is derived only from Evaluation fields the delta
// engine documents bit-identical to scratch evaluation, so both scoring
// paths compute bitwise-identical scores.
type score struct {
	unserved int
	obj      float64
}

// scoreEval derives the repair score from an exact evaluation. The served
// latency sum runs in request-index order — the same deterministic order
// both evaluators fill Latencies in.
func scoreEval(in *model.Instance, ev *model.Evaluation) score {
	lat := 0.0
	for _, d := range ev.Latencies {
		if !math.IsInf(d, 1) {
			lat += d
		}
	}
	return score{unserved: ev.MissingInstances + ev.Unroutable, obj: in.Objective(ev.Cost, lat)}
}

// betterThan reports a strict lexicographic improvement over b: fewer
// unserved requests, or equally many and a served-part objective better by
// more than ObjTol (the strict first-wins margin the rest of the solver
// stack uses).
func (a score) betterThan(b score) bool {
	if a.unserved != b.unserved {
		return a.unserved < b.unserved
	}
	return a.obj < b.obj-model.ObjTol
}

// scorer abstracts the two scoring paths. All methods are exact (Eq. 1–6)
// and — across the two implementations — bitwise identical, which is what
// makes Config.Naive a true reference and not an approximation.
type scorer interface {
	// current scores the live placement.
	current() score
	// probeRemoval scores the placement with (svc, node) cleared, without
	// mutating it.
	probeRemoval(svc, node int) score
	// probeAdd scores the placement with (svc, node) set, without mutating
	// it (tentative apply + roll-back on the delta path); the flag reports
	// an Eq. 5 violation.
	probeAdd(svc, node int) (score, bool)
	// probeBundle scores the placement with every listed instance set,
	// without mutating it.
	probeBundle(adds []chaos.Inst) (score, bool)
	// set commits a mutation.
	set(svc, node int, val bool)
	// placement returns the live placement (aliased; read-only for callers).
	placement() model.Placement
	// eval returns the full exact evaluation of the current placement.
	eval() *model.Evaluation
}

// deltaScorer is the incremental path: one DeltaEvaluator bound to the
// masked instance for the whole repair; probes tentatively Apply, Eval, and
// Revert, paying only incremental re-routing.
type deltaScorer struct {
	in *model.Instance
	d  *model.DeltaEvaluator
}

func (s *deltaScorer) scoreNow() (score, bool) {
	ev := s.d.Eval()
	return scoreEval(s.in, ev), ev.OverBudget
}
func (s *deltaScorer) current() score {
	sc, _ := s.scoreNow()
	return sc
}
func (s *deltaScorer) probeRemoval(i, k int) score {
	dl := s.d.Apply(i, k, false)
	sc, _ := s.scoreNow()
	s.d.Revert(dl)
	return sc
}
func (s *deltaScorer) probeAdd(i, k int) (score, bool) {
	dl := s.d.Apply(i, k, true)
	sc, over := s.scoreNow()
	s.d.Revert(dl)
	return sc, over
}
func (s *deltaScorer) probeBundle(adds []chaos.Inst) (score, bool) {
	dls := make([]*model.Delta, 0, len(adds))
	for _, a := range adds {
		dls = append(dls, s.d.Apply(a.Svc, a.Node, true))
	}
	sc, over := s.scoreNow()
	for j := len(dls) - 1; j >= 0; j-- { // LIFO revert discipline
		s.d.Revert(dls[j])
	}
	return sc, over
}
func (s *deltaScorer) set(i, k int, val bool)     { s.d.Apply(i, k, val) }
func (s *deltaScorer) placement() model.Placement { return s.d.Placement() }
func (s *deltaScorer) eval() *model.Evaluation    { return s.d.Eval() }

// naiveScorer is the reference path: every score is a scratch
// EvaluateRouted, probes clone the placement.
type naiveScorer struct {
	in   *model.Instance
	p    model.Placement
	mode model.RoutingMode
	seed int64
}

func (s *naiveScorer) scoreOf(p model.Placement) (score, bool) {
	ev := s.in.EvaluateRouted(p, s.mode, s.seed)
	return scoreEval(s.in, ev), ev.OverBudget
}
func (s *naiveScorer) current() score {
	sc, _ := s.scoreOf(s.p)
	return sc
}
func (s *naiveScorer) probeRemoval(i, k int) score {
	q := s.p.Clone()
	q.Set(i, k, false)
	sc, _ := s.scoreOf(q)
	return sc
}
func (s *naiveScorer) probeAdd(i, k int) (score, bool) {
	q := s.p.Clone()
	q.Set(i, k, true)
	return s.scoreOf(q)
}
func (s *naiveScorer) probeBundle(adds []chaos.Inst) (score, bool) {
	q := s.p.Clone()
	for _, a := range adds {
		q.Set(a.Svc, a.Node, true)
	}
	return s.scoreOf(q)
}
func (s *naiveScorer) set(i, k int, val bool) { s.p.Set(i, k, val) }
func (s *naiveScorer) placement() model.Placement {
	return s.p
}
func (s *naiveScorer) eval() *model.Evaluation {
	return s.in.EvaluateRouted(s.p, s.mode, s.seed)
}

// Classify reports the damage the mask's active faults inflict on p without
// repairing anything; the masked placement (lost instances cleared) is
// returned alongside. in must be built on the mask's base graph.
func Classify(in *model.Instance, m *chaos.Mask, p model.Placement) (Damage, model.Placement) {
	min := m.Instance(in)
	masked, lost := m.MaskPlacement(p)
	dmg := Damage{Lost: lost}
	for k := 0; k < min.V(); k++ {
		if min.StorageUsed(masked, k) > min.Graph.Node(k).Storage+model.FeasTol {
			dmg.StorageViolated = append(dmg.StorageViolated, k)
		}
	}
	dmg.OverBudget = !min.CheckBudget(masked)
	return dmg, masked
}

// Run repairs p against the mask's current fault state and returns the
// finished Result. p itself is never mutated; the repair works on the masked
// copy. in must be built on the mask's base graph (Mask.Instance panics
// otherwise).
func Run(in *model.Instance, m *chaos.Mask, p model.Placement, cfg Config) *Result {
	min := m.Instance(in)
	dmg, masked := Classify(in, m, p)
	res := &Result{Damage: dmg, Epoch: m.Epoch()}

	var s scorer
	if cfg.Naive {
		s = &naiveScorer{in: min, p: masked, mode: cfg.Mode, seed: cfg.Seed}
	} else {
		s = &deltaScorer{in: min, d: model.NewDeltaEvaluator(min, masked, cfg.Mode, cfg.Seed)}
	}
	res.Before = s.eval()

	evictStorage(min, s, res)
	evictBudget(min, s, res)
	reprovision(min, m, s, res, cfg)

	res.After = s.eval()
	res.Placement = s.placement()
	invariant.CheckPostRepair(min, res.After, "repair.Run")
	return res
}

// evictStorage clears Eq. 6 violations on the masked substrate: while some
// node over-fills its (possibly shrunk) capacity, remove the instance on it
// whose removal leaves the best repair score. CheckStorage returns the
// first violating node, services are probed ascending, and a candidate
// replaces the incumbent only when strictly better — all first-wins
// deterministic.
func evictStorage(min *model.Instance, s scorer, res *Result) {
	for {
		k := min.CheckStorage(s.placement())
		if k < 0 {
			return
		}
		cur := s.placement()
		var best score
		bestSvc := -1
		for i := range cur.X {
			if !cur.Has(i, k) {
				continue
			}
			sc := s.probeRemoval(i, k)
			if bestSvc < 0 || sc.betterThan(best) {
				best, bestSvc = sc, i
			}
		}
		if bestSvc < 0 {
			return // unreachable: a violating node stores at least one instance
		}
		s.set(bestSvc, k, false)
		res.Evicted = append(res.Evicted, chaos.Inst{Svc: bestSvc, Node: k})
	}
}

// evictBudget clears Eq. 5 violations: while the deployment exceeds the
// budget, remove the globally least-damaging instance (ascending svc, node;
// strict score margin, first-wins).
func evictBudget(min *model.Instance, s scorer, res *Result) {
	for !min.CheckBudget(s.placement()) {
		cur := s.placement()
		var best score
		bestSvc, bestNode := -1, -1
		for i := range cur.X {
			for k, on := range cur.X[i] {
				if !on {
					continue
				}
				sc := s.probeRemoval(i, k)
				if bestSvc < 0 || sc.betterThan(best) {
					best, bestSvc, bestNode = sc, i, k
				}
			}
		}
		if bestSvc < 0 {
			return // empty placement cannot exceed a non-negative budget
		}
		s.set(bestSvc, bestNode, false)
		res.Evicted = append(res.Evicted, chaos.Inst{Svc: bestSvc, Node: bestNode})
	}
}

// reprovision re-adds instances in two phases.
//
// Phase 1, restoration: while some request is unserved (+Inf latency), walk
// the unserved requests ascending and, for each, probe every up node's
// restoration bundle — the request's chain services not already on that
// node, provisioned together (storage and budget prefiltered on the masked
// substrate). The first request with a strictly score-improving bundle gets
// its best bundle committed, then the placement is re-evaluated (one bundle
// often serves several requests). Bundles are what let repair heal network
// partitions: a request that needs three services back will never be fixed
// by single adds, each of which looks like pure cost.
//
// Phase 2, refinement: greedily add single instances of the damaged
// services — lost to a crash, given up to eviction, or in the chain of a
// request the pre-repair evaluation could not edge-serve — wherever the
// repair score strictly improves, Algorithm-5 style: every feasible
// candidate is tentatively applied, scored, rolled back, and only the
// round's best strictly-improving candidate is committed.
func reprovision(min *model.Instance, m *chaos.Mask, s scorer, res *Result, cfg Config) {
	probes, commits := 0, 0
	defer func() { res.RolledBack = probes - commits }()

	for cfg.MaxAdds <= 0 || len(res.Added) < cfg.MaxAdds {
		ev := s.eval()
		curScore := scoreEval(min, ev)
		if curScore.unserved == 0 {
			break
		}
		cur := s.placement()
		curCost := min.DeployCost(cur)
		committed := false
		for h := range ev.Latencies {
			if !math.IsInf(ev.Latencies[h], 1) {
				continue // served (edge or cloud)
			}
			best := curScore
			bestNode := -1
			var bestBundle []chaos.Inst
			for k := 0; k < min.V(); k++ {
				if !m.NodeUp(k) {
					continue
				}
				bundle := restoreBundle(min, cur, h, k, curCost)
				if bundle == nil {
					continue
				}
				sc, over := s.probeBundle(bundle)
				probes++
				if over {
					continue
				}
				sc.obj += cfg.coldPenaltyBundle(bundle)
				if sc.betterThan(best) {
					best, bestNode, bestBundle = sc, k, bundle
				}
			}
			if bestNode >= 0 {
				for _, a := range bestBundle {
					s.set(a.Svc, a.Node, true)
				}
				res.Added = append(res.Added, bestBundle...)
				commits++
				committed = true
				break // re-evaluate: the bundle may have served other requests too
			}
		}
		if !committed {
			break // remaining unserved requests have no feasible restoration
		}
	}

	damaged := make([]bool, min.M())
	for _, li := range res.Damage.Lost {
		damaged[li.Svc] = true
	}
	for _, e := range res.Evicted {
		damaged[e.Svc] = true
	}
	for h := range res.Before.Latencies {
		if res.Before.Routes[h].Nodes != nil && !math.IsInf(res.Before.Latencies[h], 1) {
			continue // edge-served pre-repair: its services are intact
		}
		for _, svc := range min.Workload.Requests[h].Chain {
			damaged[svc] = true
		}
	}
	for cfg.MaxAdds <= 0 || len(res.Added) < cfg.MaxAdds {
		curScore := s.current()
		cur := s.placement()
		curCost := min.DeployCost(cur)
		best := curScore
		bestSvc, bestNode := -1, -1
		for i := 0; i < min.M(); i++ {
			if !damaged[i] {
				continue
			}
			svc := min.Workload.Catalog.Service(i)
			if curCost+svc.DeployCost > min.Budget+model.FeasTol {
				continue // no budget headroom for this service
			}
			for k := 0; k < min.V(); k++ {
				if !m.NodeUp(k) || cur.Has(i, k) {
					continue
				}
				if min.StorageUsed(cur, k)+svc.Storage > min.Graph.Node(k).Storage+model.FeasTol {
					continue // no storage headroom on the masked capacity
				}
				sc, over := s.probeAdd(i, k)
				probes++
				if over {
					continue
				}
				sc.obj += cfg.coldPenalty(i, k)
				if sc.betterThan(best) {
					best, bestSvc, bestNode = sc, i, k
				}
			}
		}
		if bestSvc < 0 {
			break
		}
		s.set(bestSvc, bestNode, true)
		res.Added = append(res.Added, chaos.Inst{Svc: bestSvc, Node: bestNode})
		commits++
	}
}

// restoreBundle is the phase-1 restoration candidate for request h on node
// k: every chain service not already placed on k, provisioned together.
// Returns nil when the chain is already fully present on k, or when k lacks
// the storage (masked capacity) or the deployment lacks the budget headroom
// for the whole bundle.
func restoreBundle(min *model.Instance, cur model.Placement, h, k int, curCost float64) []chaos.Inst {
	var adds []chaos.Inst
	need := min.StorageUsed(cur, k)
	cost := curCost
chain:
	for _, i := range min.Workload.Requests[h].Chain {
		if cur.Has(i, k) {
			continue
		}
		for _, a := range adds {
			if a.Svc == i {
				continue chain // chains may repeat a service
			}
		}
		svc := min.Workload.Catalog.Service(i)
		need += svc.Storage
		cost += svc.DeployCost
		adds = append(adds, chaos.Inst{Svc: i, Node: k})
	}
	if len(adds) == 0 {
		return nil
	}
	if need > min.Graph.Node(k).Storage+model.FeasTol {
		return nil
	}
	if cost > min.Budget+model.FeasTol {
		return nil
	}
	return adds
}
