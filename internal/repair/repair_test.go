package repair

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/baselines"
	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/topology"
)

func testInstance(t *testing.T, nodes, users int, seed int64) *model.Instance {
	t.Helper()
	g := topology.RandomGeometric(nodes, 0.4, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	cfg := msvc.DefaultWorkloadConfig(users)
	cfg.DeadlineSlack = 0
	w, err := msvc.GenerateWorkload(cat, g, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return &model.Instance{Graph: g, Workload: w, Lambda: 0.5, Budget: 8000}
}

// faultsOf builds a small single-kind fault burst for the differential test.
func faultsOf(t *testing.T, kind chaos.FaultKind, in *model.Instance, p model.Placement) []chaos.Event {
	t.Helper()
	switch kind {
	case chaos.NodeCrash:
		// Crash two nodes that host instances, so repair has real work.
		var evs []chaos.Event
		for k := 0; k < in.V() && len(evs) < 2; k++ {
			for i := range p.X {
				if p.Has(i, k) {
					evs = append(evs, chaos.Event{Kind: chaos.NodeCrash, Node: k})
					break
				}
			}
		}
		if len(evs) == 0 {
			t.Fatal("placement deploys nothing; bad test instance")
		}
		return evs
	case chaos.LinkDegrade:
		links := chaos.NewMask(in.Graph).Links()
		var evs []chaos.Event
		for i := 0; i < len(links) && i < 3; i++ {
			evs = append(evs, chaos.Event{Kind: chaos.LinkDegrade, A: links[i].A, B: links[i].B, Factor: 0.1})
		}
		return evs
	case chaos.StorageShrink:
		// Shrink hard enough that loaded nodes violate Eq. 6 and force
		// eviction.
		var evs []chaos.Event
		for k := 0; k < in.V() && k < 3; k++ {
			evs = append(evs, chaos.Event{Kind: chaos.StorageShrink, Node: k, Factor: 0.2})
		}
		return evs
	default:
		t.Fatalf("unsupported fault kind %v", kind)
		return nil
	}
}

// TestRepairMatchesNaive is the differential guarantee: the delta-scored
// repair and the full-re-solve-routing reference make bitwise-identical
// decisions on identical damage, across seeds and fault kinds.
func TestRepairMatchesNaive(t *testing.T) {
	kinds := []chaos.FaultKind{chaos.NodeCrash, chaos.LinkDegrade, chaos.StorageShrink}
	for _, seed := range []int64{1, 2, 3} {
		in := testInstance(t, 8, 25, seed)
		p := baselines.JDR(in)
		for _, kind := range kinds {
			m := chaos.NewMask(in.Graph)
			for _, ev := range faultsOf(t, kind, in, p) {
				if err := m.Apply(ev); err != nil {
					t.Fatal(err)
				}
			}
			fast := Run(in, m, p, DefaultConfig())
			cfg := DefaultConfig()
			cfg.Naive = true
			ref := Run(in, m, p, cfg)

			if !reflect.DeepEqual(fast.Evicted, ref.Evicted) {
				t.Fatalf("seed %d %v: evictions diverge: %v vs naive %v", seed, kind, fast.Evicted, ref.Evicted)
			}
			if !reflect.DeepEqual(fast.Added, ref.Added) {
				t.Fatalf("seed %d %v: additions diverge: %v vs naive %v", seed, kind, fast.Added, ref.Added)
			}
			if fast.RolledBack != ref.RolledBack {
				t.Fatalf("seed %d %v: roll-back counts diverge: %d vs naive %d", seed, kind, fast.RolledBack, ref.RolledBack)
			}
			if !reflect.DeepEqual(fast.Placement, ref.Placement) {
				t.Fatalf("seed %d %v: repaired placements diverge", seed, kind)
			}
			for _, pair := range [][2]float64{
				{fast.After.Objective, ref.After.Objective},
				{fast.After.LatencySum, ref.After.LatencySum},
				{fast.After.Cost, ref.After.Cost},
				{fast.Before.Objective, ref.Before.Objective},
			} {
				if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
					t.Fatalf("seed %d %v: scalar diverges: %v vs naive %v", seed, kind, pair[0], pair[1])
				}
			}
			if fast.After.MissingInstances != ref.After.MissingInstances ||
				fast.After.Unroutable != ref.After.Unroutable ||
				fast.After.CloudServed != ref.After.CloudServed {
				t.Fatalf("seed %d %v: request classes diverge: %+v vs naive %+v", seed, kind, fast.After, ref.After)
			}
		}
	}
}

// TestRepairImprovesOrHolds: without forced evictions, repair only ever
// commits strict objective improvements, so After can never score worse
// than Before.
func TestRepairImprovesOrHolds(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		in := testInstance(t, 8, 25, seed)
		p := baselines.JDR(in)
		m := chaos.NewMask(in.Graph)
		for _, ev := range faultsOf(t, chaos.NodeCrash, in, p) {
			if err := m.Apply(ev); err != nil {
				t.Fatal(err)
			}
		}
		res := Run(in, m, p, DefaultConfig())
		if len(res.Evicted) != 0 {
			t.Fatalf("seed %d: node crashes forced evictions %v", seed, res.Evicted)
		}
		if res.After.Objective > res.Before.Objective+model.ObjTol {
			t.Fatalf("seed %d: repair hurt the objective: %v -> %v", seed, res.Before.Objective, res.After.Objective)
		}
		if len(res.Damage.Lost) == 0 {
			t.Fatalf("seed %d: crash of a hosting node lost no instances", seed)
		}
	}
}

// TestRepairEnforcesFeasibility: storage shrinks must always end Eq. 5/6
// feasible on the masked substrate, with every eviction accounted.
func TestRepairEnforcesFeasibility(t *testing.T) {
	in := testInstance(t, 8, 25, 2)
	p := baselines.JDR(in)
	m := chaos.NewMask(in.Graph)
	for _, ev := range faultsOf(t, chaos.StorageShrink, in, p) {
		if err := m.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	dmg, _ := Classify(in, m, p)
	res := Run(in, m, p, DefaultConfig())
	if !reflect.DeepEqual(res.Damage, dmg) {
		t.Fatalf("Run's damage %+v != Classify's %+v", res.Damage, dmg)
	}
	min := m.Instance(in)
	if k := min.CheckStorage(res.Placement); k >= 0 {
		t.Fatalf("repaired placement still violates storage at node %d", k)
	}
	if !min.CheckBudget(res.Placement) {
		t.Fatalf("repaired placement exceeds budget: cost %v > %v", min.DeployCost(res.Placement), min.Budget)
	}
	if len(dmg.StorageViolated) > 0 && len(res.Evicted) == 0 {
		t.Fatalf("storage violations %v repaired with no evictions", dmg.StorageViolated)
	}
	if res.Epoch != m.Epoch() {
		t.Fatalf("result epoch %d != mask epoch %d", res.Epoch, m.Epoch())
	}
}

// TestRepairCrashRecoverRoundTrip: crash, repair, recover, repair again —
// once the mask is pristine the masked instance is the base instance, and
// evaluating the original placement restores the pre-fault evaluation bit
// for bit.
func TestRepairCrashRecoverRoundTrip(t *testing.T) {
	in := testInstance(t, 8, 25, 3)
	p := baselines.JDR(in)
	base := in.EvaluateRouted(p, model.RouteModeOptimal, 0)

	m := chaos.NewMask(in.Graph)
	crash := faultsOf(t, chaos.NodeCrash, in, p)
	for _, ev := range crash {
		if err := m.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	mid := Run(in, m, p, DefaultConfig())
	if len(mid.Damage.Lost) == 0 {
		t.Fatal("crash lost no instances")
	}

	for _, ev := range crash {
		if err := m.Apply(chaos.Event{Kind: chaos.NodeRecover, Node: ev.Node}); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Pristine() {
		t.Fatal("recovering every crashed node did not restore the pristine mask")
	}
	post := Run(in, m, p, DefaultConfig())
	if len(post.Damage.Lost) != 0 || len(post.Evicted) != 0 || len(post.Added) != 0 {
		t.Fatalf("repair on a pristine mask was not the identity: %+v", post)
	}
	if math.Float64bits(post.After.Objective) != math.Float64bits(base.Objective) ||
		math.Float64bits(post.After.LatencySum) != math.Float64bits(base.LatencySum) ||
		math.Float64bits(post.After.Cost) != math.Float64bits(base.Cost) {
		t.Fatalf("post-recovery evaluation diverges from the pre-fault baseline: %v vs %v", post.After.Objective, base.Objective)
	}
	for h := range base.Latencies {
		if math.Float64bits(post.After.Latencies[h]) != math.Float64bits(base.Latencies[h]) {
			t.Fatalf("request %d latency %v != pre-fault %v", h, post.After.Latencies[h], base.Latencies[h])
		}
	}
}

// TestRepairCloudFallback: with a cloud configured, requests whose services
// cannot be restored degrade to the cloud instead of counting missing.
func TestRepairCloudFallback(t *testing.T) {
	in := testInstance(t, 8, 25, 1)
	cc := model.DefaultCloudConfig()
	in.Cloud = &cc
	in.Budget = 0 // no re-provision headroom at all
	p := baselines.JDR(in)
	// Zero budget: JDR may deploy nothing, so place one instance by hand to
	// have something to lose.
	if p.Instances() == 0 {
		p.Set(0, 0, true)
	}
	m := chaos.NewMask(in.Graph)
	var crashed []int
	for k := 0; k < in.V(); k++ {
		for i := range p.X {
			if p.Has(i, k) {
				if err := m.Apply(chaos.Event{Kind: chaos.NodeCrash, Node: k}); err != nil {
					t.Fatal(err)
				}
				crashed = append(crashed, k)
				break
			}
		}
	}
	if len(crashed) == 0 {
		t.Fatal("nothing deployed, nothing to crash")
	}
	res := Run(in, m, p, DefaultConfig())
	if res.After.MissingInstances != 0 {
		t.Fatalf("cloud fallback left %d requests missing", res.After.MissingInstances)
	}
	if res.After.CloudServed == 0 {
		t.Fatal("losing every instance cloud-served no requests")
	}
	if len(res.Added) != 0 {
		t.Fatalf("zero budget still re-provisioned %v", res.Added)
	}
}
