package serve

import (
	"fmt"
	"math"
	"time"

	"repro/internal/chaos"
	"repro/internal/invariant"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/repair"
	"repro/internal/topology"
)

// DefaultResolveThreshold is the post-repair unserved fraction past which the
// default AutoPolicy escalates to a full re-solve.
const DefaultResolveThreshold = 0.25

// Config wires a Daemon to a substrate, a planner, and a reaction policy.
type Config struct {
	Graph   *topology.Graph
	Catalog *msvc.Catalog
	Lambda  float64 // Eq. 3 cost/latency trade-off
	Budget  float64 // Eq. 6 deployment budget
	Cloud   *model.CloudConfig

	Mode model.RoutingMode
	// RouteSeed seeds request routing; epoch e routes with RouteSeed+e, the
	// simulator's per-slot discipline.
	RouteSeed int64

	// Planner produces a full placement from scratch (the initial solve, the
	// replay-mode per-epoch plan, and AutoPolicy escalation). PlannerName
	// labels it in errors.
	Planner     func(*model.Instance) (model.Placement, error)
	PlannerName string

	// Repair tunes the incremental engine (Mode/Seed are overridden per
	// epoch).
	Repair repair.Config

	// Policy reacts each epoch the placement is stale. Nil installs
	// AutoPolicy{Threshold: ResolveThreshold}.
	Policy Policy
	// ResolveThreshold configures the default AutoPolicy; 0 means
	// DefaultResolveThreshold (build an AutoPolicy explicitly for a true
	// zero threshold).
	ResolveThreshold float64

	// Replan switches the daemon into replay mode: every non-empty epoch
	// re-plans from scratch on the pre-strike substrate, exactly like the
	// batch simulator's slot loop. This is the mode the bitwise
	// daemon-vs-sim.Run equivalence holds in. Serve mode (false) solves once
	// and afterwards reacts incrementally.
	Replan bool

	// MaxBatch caps admitted arrivals per epoch; the overflow is deferred to
	// the next epoch in admission order. 0 admits everything (required in
	// replay mode).
	MaxBatch int

	// Lifecycle enables the serverless instance lifecycle (serve mode only).
	Lifecycle LifecycleConfig
}

// EpochRecord is the measurement of one daemon epoch. The evaluation columns
// (Requests through Degraded) are computed exactly like the simulator's
// SlotRecord so replay comparisons can be bitwise.
type EpochRecord struct {
	Epoch    int
	Requests int

	// Admission telemetry.
	Arrived, Departed, Moved int
	// Deferred counts arrivals pushed to the next epoch by MaxBatch.
	Deferred int

	// Fault telemetry.
	FaultEvents int
	DownNodes   int
	// Rehomed counts *requests* moved off down nodes (the simulator's column
	// counts users — excluded from bitwise comparison).
	Rehomed int

	AvgDelay        float64
	MaxDelay        float64
	Cost            float64
	Objective       float64
	ServedObjective float64
	Missing         int
	Unroutable      int
	CloudServed     int
	Degraded        int

	// Reaction telemetry.
	PlanTime   time.Duration // replay-mode planner time
	ReactTime  time.Duration // policy reaction time (repair and/or re-solve)
	Adds       int           // instances repair re-provisioned
	Evicts     int           // instances repair evicted
	RolledBack int           // repair candidates scored and reverted
	Resolved   bool          // a full re-solve produced this epoch's placement
	// Incremental marks epochs served by the delta evaluator alone — nothing
	// changed, so no policy ran.
	Incremental bool

	// Serverless lifecycle telemetry.
	ColdSteps    int // chain steps that paid the cold-start penalty
	ScaledToZero int // idle instances reclaimed at epoch end
	WarmSpares   int // idle instances kept by the warm-pool sizer
}

// RunResult aggregates a daemon run.
type RunResult struct {
	Records []EpochRecord
	// AllDelays collects every finite per-request latency in epoch order —
	// the simulator's AllDelays.
	AllDelays []float64
	// Final is the last non-empty epoch's evaluation, nil if none.
	Final *model.Evaluation
	// Placement is the daemon's live placement after the run.
	Placement model.Placement
}

// Daemon owns a live substrate and placement and ingests an event stream —
// request arrivals and departures, user moves, fault strikes and heals —
// reacting through the same Policy layer the simulator's fault branches use.
// Steady epochs are served by a bound DeltaEvaluator; a policy runs only when
// the admitted work or the substrate actually changed.
type Daemon struct {
	cfg    Config
	policy Policy

	mask   *chaos.Mask
	queue  []Event
	faults []Event // this epoch's strikes, staged by admit

	// active is the admitted workload in arrival order. Order is load-bearing:
	// RouteModeRandom derives each request's stream from its index.
	active  []msvc.Request
	workGen int // bumped on any active-set change

	placement     model.Placement
	havePlacement bool
	lastDegraded  int

	// Incremental-path binding and its validity stamps.
	de          *model.DeltaEvaluator
	deGraph     *topology.Graph
	deWorkGen   int
	deColdEpoch uint64
	deSeed      int64

	// Serverless lifecycle state.
	cold *model.ColdStartModel
	life *lifecycle

	slot      int
	records   []EpochRecord
	allDelays []float64
	lastEval  *model.Evaluation
}

// NewDaemon validates cfg and builds an idle daemon with a pristine mask.
func NewDaemon(cfg Config) (*Daemon, error) {
	if cfg.Graph == nil || cfg.Catalog == nil {
		return nil, fmt.Errorf("serve: nil graph or catalog")
	}
	if cfg.Planner == nil {
		return nil, fmt.Errorf("serve: nil planner")
	}
	if cfg.PlannerName == "" {
		cfg.PlannerName = "planner"
	}
	if cfg.Replan && cfg.MaxBatch > 0 {
		return nil, fmt.Errorf("serve: replay mode cannot batch admissions (MaxBatch=%d)", cfg.MaxBatch)
	}
	if cfg.Replan && cfg.Lifecycle.Enabled() {
		return nil, fmt.Errorf("serve: replay mode cannot run the instance lifecycle")
	}
	d := &Daemon{
		cfg:       cfg,
		mask:      chaos.NewMask(cfg.Graph),
		placement: model.NewPlacement(cfg.Catalog.Len(), cfg.Graph.N()),
	}
	d.policy = cfg.Policy
	if d.policy == nil {
		thr := cfg.ResolveThreshold
		//socllint:ignore floateq deliberate exact zero: the unset-field sentinel
		if thr == 0 {
			thr = DefaultResolveThreshold
		}
		d.policy = AutoPolicy{Threshold: thr}
	}
	if cfg.Lifecycle.Enabled() {
		d.life = newLifecycle(cfg.Lifecycle, cfg.Catalog.Len(), cfg.Graph.N())
	}
	if cfg.Lifecycle.ColdStartDelay > 0 {
		d.cold = model.NewColdStartModel(cfg.Catalog.Len(), cfg.Graph.N(), cfg.Lifecycle.ColdStartDelay)
	}
	return d, nil
}

// Ingest queues events for admission; an event with Slot <= the current epoch
// is admitted by the next Tick. Order within a slot is preserved.
func (d *Daemon) Ingest(evs ...Event) { d.queue = append(d.queue, evs...) }

// Epoch returns the next epoch Tick will serve.
func (d *Daemon) Epoch() int { return d.slot }

// Placement returns the daemon's live placement (not a copy).
func (d *Daemon) Placement() model.Placement { return d.placement }

// Mask returns the daemon's accumulated fault state.
func (d *Daemon) Mask() *chaos.Mask { return d.mask }

// ActiveRequests returns the number of admitted, undeparted requests.
func (d *Daemon) ActiveRequests() int { return len(d.active) }

// Result snapshots the run so far.
func (d *Daemon) Result() *RunResult {
	return &RunResult{
		Records:   d.records,
		AllDelays: d.allDelays,
		Final:     d.lastEval,
		Placement: d.placement,
	}
}

// Run ticks the daemon through numEpochs epochs, returning the partial result
// alongside any mid-run error.
func (d *Daemon) Run(numEpochs int) (*RunResult, error) {
	for i := 0; i < numEpochs; i++ {
		if _, err := d.Tick(); err != nil {
			return d.Result(), err
		}
	}
	return d.Result(), nil
}

// RunScript ingests every event of a script and runs the daemon over the
// script's horizon (at least far enough to admit every event).
func (d *Daemon) RunScript(s *Script) (*RunResult, error) {
	epochs := s.Meta.NumSlots
	for _, ev := range s.Events {
		d.Ingest(ev)
		if ev.Slot+1 > epochs {
			epochs = ev.Slot + 1
		}
	}
	return d.Run(epochs - d.slot)
}

// Tick serves one epoch: admit queued events, react if anything changed,
// evaluate, and advance the serverless lifecycle.
//
// The epoch order is load-bearing for replay equivalence with the batch
// simulator's slot loop: admission (pre-strike homes), replay-mode planning
// on the pre-strike substrate, fault strikes, request re-homing, then the
// policy — the exact order sim.Run performs per slot.
func (d *Daemon) Tick() (*EpochRecord, error) {
	// Epoch boundary: instances that survived to the boundary are warm;
	// anything deployed mid-epoch (repair adds, re-solve placements) stays
	// cold until the next boundary.
	if d.cold != nil {
		d.cold.SyncWarm(d.placement)
	}

	rec := EpochRecord{Epoch: d.slot}
	workChanged := d.admit(&rec)

	// Replay mode plans on the substrate as currently known — this epoch's
	// faults have not struck yet (the simulator's discipline).
	if d.cfg.Replan && len(d.active) > 0 {
		planIn := d.instanceOn(d.mask.Graph())
		//socllint:ignore detrand wall-clock plan time is reported, never branched on
		t0 := time.Now()
		p, err := d.cfg.Planner(planIn)
		//socllint:ignore detrand wall-clock plan time is reported, never branched on
		rec.PlanTime = time.Since(t0)
		if err != nil {
			d.finish(&rec)
			return &rec, fmt.Errorf("serve: %s failed at epoch %d: %w", d.cfg.PlannerName, d.slot, err)
		}
		d.placement = p
		d.havePlacement = true
	}

	// Fault strikes land after planning.
	maskChanged := false
	for _, ev := range d.faults {
		pre := d.mask.Epoch()
		if err := d.mask.Apply(ev.Fault); err != nil {
			d.finish(&rec)
			return &rec, fmt.Errorf("serve: epoch %d: fault replay: %w", d.slot, err)
		}
		rec.FaultEvents++
		if d.mask.Epoch() != pre {
			maskChanged = true
		}
	}
	d.faults = d.faults[:0]
	rec.DownNodes = len(d.mask.DownNodes())

	// An empty epoch advances the fault timeline and the lifecycle only —
	// like the simulator's empty slot, no re-homing happens.
	if len(d.active) == 0 {
		d.lastEval = nil
		d.lifecycleEnd(&rec, nil)
		d.finish(&rec)
		return &rec, nil
	}
	rec.Requests = len(d.active)

	if !d.mask.Pristine() {
		rec.Rehomed = RehomeRequests(d.mask, d.cfg.Graph, d.active)
		if rec.Rehomed > 0 {
			// Homes mutated in place: any bound evaluator is stale.
			workChanged = true
			d.workGen++
		}
	}

	evalIn := d.instanceOn(d.cfg.Graph)
	seed := d.cfg.RouteSeed + int64(d.slot)
	planned := d.placement

	if d.cfg.Replan || workChanged || maskChanged || !d.havePlacement {
		pol := d.policy
		if !d.havePlacement {
			// Initial solve: nothing to repair yet.
			pol = ResolvePolicy{}
		}
		// The lifecycle's cold model rides the repair seam too: restore
		// probes prefer already-warm coordinates (repair.Config.ColdStart).
		// Replay mode and lifecycle-free daemons have d.cold == nil, so
		// their repair decisions are bitwise unchanged.
		rcfg := d.cfg.Repair
		if rcfg.ColdStart == nil {
			rcfg.ColdStart = d.cold
		}
		ctx := &EpochContext{
			In:          evalIn,
			Mask:        d.mask,
			Planned:     planned,
			Mode:        d.cfg.Mode,
			Seed:        seed,
			Repair:      rcfg,
			Resolve:     d.cfg.Planner,
			PlannerName: d.cfg.PlannerName,
		}
		out, err := pol.Serve(ctx)
		if err != nil {
			d.finish(&rec)
			return &rec, fmt.Errorf("serve: epoch %d: %w", d.slot, err)
		}
		d.placement = out.Placement
		d.havePlacement = true
		d.lastEval = out.Eval
		rec.ReactTime = out.ReactTime
		rec.Adds = len(out.Added)
		rec.Evicts = len(out.Evicted)
		rec.RolledBack = out.RolledBack
		rec.Resolved = out.Resolved
		if !d.mask.Pristine() {
			rec.Degraded = CountDegraded(evalIn, planned, out.Eval, d.cfg.Mode, seed)
		}
		d.lastDegraded = rec.Degraded
	} else {
		// Steady epoch: nothing changed, so the bound delta evaluator carries
		// the previous epoch's routes forward (and absorbs lifecycle reclaims
		// as pure cost deltas).
		d.ensureDelta(seed)
		d.de.AdvanceTo(d.placement)
		d.lastEval = d.de.Eval()
		rec.Incremental = true
		rec.Degraded = d.lastDegraded
	}
	if invariant.Enabled {
		invariant.CheckPostRepair(d.mask.Instance(evalIn), d.lastEval, "serve.Tick")
	}

	d.fillEvalColumns(&rec, evalIn)
	d.lifecycleEnd(&rec, d.lastEval)
	if invariant.Enabled {
		// Only after observe/reap have reconciled the idle counters with the
		// (possibly policy-replaced) placement is the coherence rule total.
		d.checkLifecycleCoherence()
	}
	d.finish(&rec)
	return &rec, nil
}

// finish stamps the epoch into the record stream and advances the clock.
func (d *Daemon) finish(rec *EpochRecord) {
	d.records = append(d.records, *rec)
	d.slot++
}

// admit drains every queued event due this epoch, in admission order, and
// reports whether the active workload changed. Fault events are staged for
// the post-planning strike phase; arrivals beyond MaxBatch are deferred to
// the next epoch.
func (d *Daemon) admit(rec *EpochRecord) bool {
	changed := false
	arrivals := 0
	rest := d.queue[:0]
	for idx := range d.queue {
		ev := d.queue[idx]
		if ev.Slot > d.slot {
			rest = append(rest, ev)
			continue
		}
		switch ev.Kind {
		case EvFault:
			d.faults = append(d.faults, ev)
		case EvArrive:
			if d.cfg.MaxBatch > 0 && arrivals >= d.cfg.MaxBatch {
				ev.Slot = d.slot + 1
				rec.Deferred++
				rest = append(rest, ev)
				continue
			}
			req := ev.Req
			req.ID = ev.ID
			req.Chain = append([]int(nil), ev.Req.Chain...)
			req.EdgeData = append([]float64(nil), ev.Req.EdgeData...)
			d.active = append(d.active, req)
			arrivals++
			rec.Arrived++
			changed = true
		case EvDepart:
			if i := d.findActive(ev.ID); i >= 0 {
				d.active = append(d.active[:i], d.active[i+1:]...)
				rec.Departed++
				changed = true
			}
		case EvMove:
			if i := d.findActive(ev.ID); i >= 0 && d.active[i].Home != ev.Node {
				d.active[i].Home = ev.Node
				rec.Moved++
				changed = true
			}
		}
	}
	d.queue = rest
	if changed {
		d.workGen++
	}
	return changed
}

func (d *Daemon) findActive(id int) int {
	for i := range d.active {
		if d.active[i].ID == id {
			return i
		}
	}
	return -1
}

// instanceOn builds this epoch's instance on the given substrate view. The
// cold-start model rides along (nil unless the lifecycle prices cold starts).
func (d *Daemon) instanceOn(g *topology.Graph) *model.Instance {
	return &model.Instance{
		Graph:     g,
		Workload:  &msvc.Workload{Catalog: d.cfg.Catalog, Requests: d.active},
		Lambda:    d.cfg.Lambda,
		Budget:    d.cfg.Budget,
		Cloud:     d.cfg.Cloud,
		ColdStart: d.cold,
	}
}

// ensureDelta (re)binds the incremental evaluator when any validity stamp —
// masked substrate, workload generation, cold-set epoch, or (for random
// routing) the per-epoch seed — has moved since the last binding.
func (d *Daemon) ensureDelta(seed int64) {
	g := d.mask.Graph()
	coldEpoch := uint64(0)
	if d.cold != nil {
		coldEpoch = d.cold.Epoch()
	}
	if d.de != nil && d.deGraph == g && d.deWorkGen == d.workGen &&
		d.deColdEpoch == coldEpoch &&
		(d.cfg.Mode != model.RouteModeRandom || d.deSeed == seed) {
		return
	}
	d.de = model.NewDeltaEvaluator(d.instanceOn(g), d.placement.Clone(), d.cfg.Mode, seed)
	d.deGraph, d.deWorkGen, d.deColdEpoch, d.deSeed = g, d.workGen, coldEpoch, seed
}

// fillEvalColumns mirrors the simulator's per-slot statistics exactly (same
// accumulation order) so replay records compare bitwise.
func (d *Daemon) fillEvalColumns(rec *EpochRecord, evalIn *model.Instance) {
	ev := d.lastEval
	rec.Cost = ev.Cost
	rec.Objective = ev.Objective
	rec.Missing = ev.MissingInstances
	rec.Unroutable = ev.Unroutable
	rec.CloudServed = ev.CloudServed
	maxd := 0.0
	sum, n := 0.0, 0
	for _, dl := range ev.Latencies {
		if math.IsInf(dl, 1) {
			continue
		}
		sum += dl
		n++
		if dl > maxd {
			maxd = dl
		}
		d.allDelays = append(d.allDelays, dl)
	}
	if n > 0 {
		rec.AvgDelay = sum / float64(n)
	}
	rec.MaxDelay = maxd
	rec.ServedObjective = evalIn.Objective(ev.Cost, sum)
	if d.cold != nil {
		for h, rt := range ev.Routes {
			if rt.Nodes == nil {
				continue
			}
			chain := d.active[h].Chain
			for t, k := range rt.Nodes {
				if d.cold.IsCold(chain[t], k) {
					rec.ColdSteps++
				}
			}
		}
	}
}

// lifecycleEnd folds the served epoch into the lifecycle state and scales
// idle instances to zero. Reclaimed instances are removed from the live
// placement now; they become cold at the next epoch boundary.
func (d *Daemon) lifecycleEnd(rec *EpochRecord, ev *model.Evaluation) {
	if d.life == nil || !d.havePlacement {
		return
	}
	var used [][]bool
	if ev != nil {
		used = make([][]bool, d.cfg.Catalog.Len())
		for i := range used {
			used[i] = make([]bool, d.cfg.Graph.N())
		}
		for h, rt := range ev.Routes {
			if rt.Nodes == nil {
				continue
			}
			chain := d.active[h].Chain
			for t, k := range rt.Nodes {
				used[chain[t]][k] = true
			}
		}
	}
	demand := make([]int, d.cfg.Catalog.Len())
	seen := make([]int, d.cfg.Catalog.Len())
	for h := range d.active {
		for _, s := range d.active[h].Chain {
			if seen[s] != h+1 {
				seen[s] = h + 1
				demand[s]++
			}
		}
	}
	d.life.observe(used, demand, d.placement)
	removed, spares := d.life.reap(d.placement)
	rec.ScaledToZero = len(removed)
	rec.WarmSpares = spares
}

// checkLifecycleCoherence asserts (under the soclinvariants tag) that the
// serverless state stays aligned with the live placement: idle counters only
// age deployed instances, and every cold coordinate the model will charge
// next epoch is either deployed or about to be marked warm-irrelevant.
func (d *Daemon) checkLifecycleCoherence() {
	if d.life != nil {
		for i := range d.life.idle {
			for k := range d.life.idle[i] {
				invariant.Assertf(d.life.idle[i][k] == 0 || d.placement.Has(i, k),
					"serve: idle counter %d on undeployed instance (%d,%d)", d.life.idle[i][k], i, k)
			}
		}
	}
	if d.cold != nil {
		invariant.Assertf(d.cold.ColdCount() <= d.cfg.Catalog.Len()*d.cfg.Graph.N(),
			"serve: cold count %d exceeds coordinate space", d.cold.ColdCount())
	}
}
