// Package serve is the long-running control plane over the placement stack:
// where package sim replays a closed workload trace slot by slot (re-planning
// from scratch each slot, the paper's one-shot discipline), serve owns a
// *live* substrate and placement and ingests an open event stream — request
// arrivals, departures, user moves, fault strikes and heals — reacting
// incrementally through the delta machinery (model.DeltaEvaluator,
// internal/repair) and only escalating to a full re-solve when the repaired
// score degrades past a configurable threshold.
//
// The package has three layers:
//
//   - events and scripts (this file): a deterministic, exactly
//     round-trippable text format for event streams, so a daemon run can be
//     recorded, replayed, and compared bitwise against a batch sim.Run;
//   - policies (policy.go): the per-epoch reaction shared with internal/sim —
//     one Policy interface whose none/repair/resolve implementations are the
//     simulator's fault branches, plus the daemon's threshold escalation;
//   - the daemon (daemon.go, lifecycle.go): the event loop with admission
//     batching and the serverless instance lifecycle (idle tracking,
//     scale-to-zero, warm-pool sizing, cold-start pricing).
//
// Everything here is deterministic: the package draws no randomness, reads no
// clock except for duration telemetry, and two identically-seeded runs are
// asserted bit-identical by test.
package serve

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/msvc"
)

// EventKind discriminates stream events.
type EventKind int

// Stream event kinds.
const (
	// EvArrive admits a request: it stays active (re-served every epoch)
	// until a matching EvDepart.
	EvArrive EventKind = iota
	// EvDepart retires the active request with the event's ID.
	EvDepart
	// EvMove re-homes the active request with the event's ID to Node (user
	// mobility as seen by the control plane).
	EvMove
	// EvFault applies one chaos event to the daemon's substrate mask.
	EvFault
)

func (k EventKind) String() string {
	switch k {
	case EvArrive:
		return "arrive"
	case EvDepart:
		return "depart"
	case EvMove:
		return "move"
	case EvFault:
		return "fault"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one timestamped stream event. Slot is the epoch the event is due;
// the daemon admits every queued event with Slot <= the current epoch, in
// admission order (fault events strike after planning, mirroring the
// simulator's causal slot timeline).
type Event struct {
	Slot int
	Kind EventKind
	// ID names the request for arrive/depart/move. Arrivals must carry IDs
	// unique among concurrently-active requests.
	ID int
	// Node is the new home for EvMove.
	Node int
	// Req is the arrival payload (Req.ID == ID).
	Req msvc.Request
	// Fault is the chaos payload for EvFault (Fault.Slot is ignored; Slot
	// governs).
	Fault chaos.Event
}

// Meta is the scenario recipe a script carries so a daemon can rebuild the
// exact substrate and evaluation parameters of the run that recorded it.
type Meta struct {
	Nodes    int
	Radius   float64
	TopoSeed int64
	CatSeed  int64

	Lambda      float64
	Budget      float64
	SlotMinutes float64
	NumSlots    int
	// RouteSeed is the base of the per-epoch routing seed (seed+epoch),
	// matching the simulator's per-slot derivation. Only RouteModeRandom
	// consumes it.
	RouteSeed int64
	// CloudTransfer/CloudCompute configure the cloud fallback; both zero
	// means no fallback.
	CloudTransfer float64
	CloudCompute  float64
}

// Script is a recorded event stream plus its scenario recipe.
type Script struct {
	Meta   Meta
	Events []Event
}

// fmtF renders a float so it round-trips bitwise: hex significand form for
// finite values, the textual specials otherwise.
func fmtF(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'x', -1, 64)
}

func parseF(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

// faultKindNames maps the chaos.FaultKind String values back to kinds.
var faultKindNames = map[string]chaos.FaultKind{
	"node-crash":      chaos.NodeCrash,
	"node-recover":    chaos.NodeRecover,
	"link-degrade":    chaos.LinkDegrade,
	"link-restore":    chaos.LinkRestore,
	"storage-shrink":  chaos.StorageShrink,
	"storage-restore": chaos.StorageRestore,
}

// FormatMeta renders a meta line in the v1 text format (without the trailing
// newline). Floats use hexadecimal significand form so the line round-trips
// bit for bit through ParseMetaLine.
func FormatMeta(m Meta) string {
	return fmt.Sprintf("meta nodes=%d radius=%s toposeed=%d catseed=%d lambda=%s budget=%s slotmin=%s slots=%d routeseed=%d cloudtransfer=%s cloudcompute=%s",
		m.Nodes, fmtF(m.Radius), m.TopoSeed, m.CatSeed, fmtF(m.Lambda), fmtF(m.Budget),
		fmtF(m.SlotMinutes), m.NumSlots, m.RouteSeed, fmtF(m.CloudTransfer), fmtF(m.CloudCompute))
}

// ParseMetaLine parses a line produced by FormatMeta (with or without the
// leading "meta" directive).
func ParseMetaLine(line string) (Meta, error) {
	f := strings.Fields(line)
	if len(f) > 0 && f[0] == "meta" {
		f = f[1:]
	}
	var m Meta
	if err := parseMeta(f, &m); err != nil {
		return Meta{}, err
	}
	return m, nil
}

// FormatEvent renders one event as its script line (without the trailing
// newline) — the same per-event encoding WriteScript emits and the framed
// wire codec (internal/transport) carries, so a wire-delivered event
// round-trips bit for bit exactly like a scripted one.
func FormatEvent(e *Event) (string, error) {
	switch e.Kind {
	case EvArrive:
		chain := make([]string, len(e.Req.Chain))
		for t, svc := range e.Req.Chain {
			chain[t] = strconv.Itoa(svc)
		}
		edge := "-"
		if len(e.Req.EdgeData) > 0 {
			parts := make([]string, len(e.Req.EdgeData))
			for t, v := range e.Req.EdgeData {
				parts[t] = fmtF(v)
			}
			edge = strings.Join(parts, ",")
		}
		return fmt.Sprintf("arrive %d %d %d %s %s %s %s %s",
			e.Slot, e.ID, e.Req.Home, fmtF(e.Req.DataIn), fmtF(e.Req.DataOut),
			fmtF(e.Req.Deadline), strings.Join(chain, ","), edge), nil
	case EvDepart:
		return fmt.Sprintf("depart %d %d", e.Slot, e.ID), nil
	case EvMove:
		return fmt.Sprintf("move %d %d %d", e.Slot, e.ID, e.Node), nil
	case EvFault:
		f := e.Fault
		switch f.Kind {
		case chaos.LinkDegrade, chaos.LinkRestore:
			return fmt.Sprintf("fault %d %s %d %d %s", e.Slot, f.Kind, f.A, f.B, fmtF(f.Factor)), nil
		case chaos.StorageShrink, chaos.StorageRestore:
			return fmt.Sprintf("fault %d %s %d %s", e.Slot, f.Kind, f.Node, fmtF(f.Factor)), nil
		case chaos.NodeCrash, chaos.NodeRecover:
			return fmt.Sprintf("fault %d %s %d", e.Slot, f.Kind, f.Node), nil
		default:
			return "", fmt.Errorf("serve: cannot serialize fault kind %v", f.Kind)
		}
	default:
		return "", fmt.Errorf("serve: cannot serialize event kind %v", e.Kind)
	}
}

// ParseEventLine parses one event line (arrive/depart/move/fault) produced by
// FormatEvent. Malformed input returns an error, never panics.
func ParseEventLine(line string) (Event, error) {
	f := strings.Fields(line)
	if len(f) == 0 {
		return Event{}, fmt.Errorf("serve: empty event line")
	}
	return parseEventFields(f)
}

func parseEventFields(f []string) (Event, error) {
	switch f[0] {
	case "arrive":
		if len(f) != 9 {
			return Event{}, fmt.Errorf("arrive wants 8 fields, got %d", len(f)-1)
		}
		ev := Event{Kind: EvArrive}
		var err error
		if ev.Slot, err = strconv.Atoi(f[1]); err == nil {
			ev.ID, err = strconv.Atoi(f[2])
		}
		if err == nil {
			ev.Req.Home, err = strconv.Atoi(f[3])
		}
		if err == nil {
			ev.Req.DataIn, err = parseF(f[4])
		}
		if err == nil {
			ev.Req.DataOut, err = parseF(f[5])
		}
		if err == nil {
			ev.Req.Deadline, err = parseF(f[6])
		}
		if err != nil {
			return Event{}, err
		}
		for _, c := range strings.Split(f[7], ",") {
			svc, err := strconv.Atoi(c)
			if err != nil {
				return Event{}, err
			}
			ev.Req.Chain = append(ev.Req.Chain, svc)
		}
		if f[8] != "-" {
			for _, c := range strings.Split(f[8], ",") {
				v, err := parseF(c)
				if err != nil {
					return Event{}, err
				}
				ev.Req.EdgeData = append(ev.Req.EdgeData, v)
			}
		}
		if len(ev.Req.EdgeData) != len(ev.Req.Chain)-1 {
			return Event{}, fmt.Errorf("edge data length %d != chain length %d - 1",
				len(ev.Req.EdgeData), len(ev.Req.Chain))
		}
		ev.Req.ID = ev.ID
		return ev, nil
	case "depart", "move":
		if (f[0] == "depart" && len(f) != 3) || (f[0] == "move" && len(f) != 4) {
			return Event{}, fmt.Errorf("%s wants %d fields", f[0], map[string]int{"depart": 2, "move": 3}[f[0]])
		}
		ev := Event{Kind: EvDepart}
		if f[0] == "move" {
			ev.Kind = EvMove
		}
		var err error
		if ev.Slot, err = strconv.Atoi(f[1]); err == nil {
			ev.ID, err = strconv.Atoi(f[2])
		}
		if err == nil && ev.Kind == EvMove {
			ev.Node, err = strconv.Atoi(f[3])
		}
		if err != nil {
			return Event{}, err
		}
		return ev, nil
	case "fault":
		return parseFault(f[1:])
	default:
		return Event{}, fmt.Errorf("unknown directive %q", f[0])
	}
}

// WriteScript serializes a script in the v1 text format. Every float is
// written in hexadecimal significand form, so ParseScript(WriteScript(s))
// reproduces s bit for bit (pinned by test).
func WriteScript(w io.Writer, s *Script) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# soclserved event script v1")
	fmt.Fprintln(bw, FormatMeta(s.Meta))
	for i := range s.Events {
		line, err := FormatEvent(&s.Events[i])
		if err != nil {
			return err
		}
		fmt.Fprintln(bw, line)
	}
	return bw.Flush()
}

// ParseScript reads the v1 text format. Blank lines and #-comments are
// skipped.
func ParseScript(r io.Reader) (*Script, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	s := &Script{}
	sawMeta := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(err error) (*Script, error) {
			return nil, fmt.Errorf("serve: script line %d: %w", lineNo, err)
		}
		if f[0] == "meta" {
			if err := parseMeta(f[1:], &s.Meta); err != nil {
				return fail(err)
			}
			sawMeta = true
			continue
		}
		ev, err := parseEventFields(f)
		if err != nil {
			return fail(err)
		}
		s.Events = append(s.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: reading script: %w", err)
	}
	if !sawMeta {
		return nil, fmt.Errorf("serve: script has no meta line")
	}
	return s, nil
}

func parseMeta(kvs []string, m *Meta) error {
	for _, kv := range kvs {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return fmt.Errorf("meta field %q is not key=value", kv)
		}
		k, v := kv[:eq], kv[eq+1:]
		var err error
		switch k {
		case "nodes":
			m.Nodes, err = strconv.Atoi(v)
		case "radius":
			m.Radius, err = parseF(v)
		case "toposeed":
			m.TopoSeed, err = strconv.ParseInt(v, 10, 64)
		case "catseed":
			m.CatSeed, err = strconv.ParseInt(v, 10, 64)
		case "lambda":
			m.Lambda, err = parseF(v)
		case "budget":
			m.Budget, err = parseF(v)
		case "slotmin":
			m.SlotMinutes, err = parseF(v)
		case "slots":
			m.NumSlots, err = strconv.Atoi(v)
		case "routeseed":
			m.RouteSeed, err = strconv.ParseInt(v, 10, 64)
		case "cloudtransfer":
			m.CloudTransfer, err = parseF(v)
		case "cloudcompute":
			m.CloudCompute, err = parseF(v)
		default:
			return fmt.Errorf("unknown meta key %q", k)
		}
		if err != nil {
			return fmt.Errorf("meta %s: %w", k, err)
		}
	}
	return nil
}

func parseFault(f []string) (Event, error) {
	if len(f) < 3 {
		return Event{}, fmt.Errorf("fault wants at least slot, kind, target")
	}
	slot, err := strconv.Atoi(f[0])
	if err != nil {
		return Event{}, err
	}
	kind, ok := faultKindNames[f[1]]
	if !ok {
		return Event{}, fmt.Errorf("unknown fault kind %q", f[1])
	}
	ev := Event{Slot: slot, Kind: EvFault, Fault: chaos.Event{Slot: slot, Kind: kind}}
	switch kind {
	case chaos.LinkDegrade, chaos.LinkRestore:
		if len(f) != 5 {
			return Event{}, fmt.Errorf("%s wants a b factor", kind)
		}
		if ev.Fault.A, err = strconv.Atoi(f[2]); err != nil {
			return Event{}, err
		}
		if ev.Fault.B, err = strconv.Atoi(f[3]); err != nil {
			return Event{}, err
		}
		if ev.Fault.Factor, err = parseF(f[4]); err != nil {
			return Event{}, err
		}
	case chaos.StorageShrink, chaos.StorageRestore:
		if len(f) != 4 {
			return Event{}, fmt.Errorf("%s wants node factor", kind)
		}
		if ev.Fault.Node, err = strconv.Atoi(f[2]); err != nil {
			return Event{}, err
		}
		if ev.Fault.Factor, err = parseF(f[3]); err != nil {
			return Event{}, err
		}
	default:
		if len(f) != 3 {
			return Event{}, fmt.Errorf("%s wants node", kind)
		}
		if ev.Fault.Node, err = strconv.Atoi(f[2]); err != nil {
			return Event{}, err
		}
	}
	return ev, nil
}
