package serve

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseScript is the decoder-hardening fuzz target: arbitrary bytes must
// either parse into a script or return an error — never panic — and any
// script that does parse must round-trip exactly (WriteScript then
// ParseScript yields a script whose serialization is byte-identical, the same
// contract the hand-written round-trip tests pin on recorded streams).
//
// Run the full search with
//
//	go test -run '^$' -fuzz FuzzParseScript -fuzztime 20s ./internal/serve
func FuzzParseScript(f *testing.F) {
	f.Add([]byte("# soclserved event script v1\nmeta nodes=4 radius=0x1.999999999999ap-02 toposeed=1 catseed=1 lambda=0x1p-01 budget=0x1.9p+06 slotmin=0x1.4p+02 slots=3 routeseed=7 cloudtransfer=0x0p+00 cloudcompute=0x0p+00\narrive 0 0 2 0x1p-03 0x1p-04 0x1.4p+03 0,1,2 0x1p-05,0x1p-05\ndepart 1 0\nmove 1 1 3\nfault 1 node-crash 2\nfault 2 link-degrade 0 1 0x1p-02\nfault 2 storage-shrink 3 0x1p-01\n"))
	f.Add([]byte("meta nodes=1\narrive 0 0 0 1 2 3 0 -\n"))
	f.Add([]byte("meta\n"))
	f.Add([]byte("arrive 0 0 0 NaN +Inf -Inf 1 -\n"))
	f.Add([]byte("fault 0 node-recover 0\nmeta nodes=2 radius=1\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseScript(bytes.NewReader(data))
		if err != nil {
			if s != nil {
				t.Fatalf("ParseScript returned both a script and an error: %v", err)
			}
			return
		}
		var first bytes.Buffer
		if werr := WriteScript(&first, s); werr != nil {
			t.Fatalf("WriteScript rejected a parsed script: %v", werr)
		}
		s2, err := ParseScript(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reparse of serialized script failed: %v\nserialized:\n%s", err, first.String())
		}
		var second bytes.Buffer
		if werr := WriteScript(&second, s2); werr != nil {
			t.Fatalf("re-serialize failed: %v", werr)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("script round trip not byte-identical:\n--- first\n%s\n--- second\n%s",
				first.String(), second.String())
		}
	})
}

// FuzzParseEventLine hardens the shared per-event decoder the wire codec
// (internal/transport) feeds with network-supplied lines.
func FuzzParseEventLine(f *testing.F) {
	f.Add("arrive 0 0 2 0x1p-03 0x1p-04 0x1.4p+03 0,1,2 0x1p-05,0x1p-05")
	f.Add("depart 3 17")
	f.Add("move 3 17 4")
	f.Add("fault 1 link-degrade 0 1 0x1p-02")
	f.Add("fault 9 storage-restore 3 1")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		ev, err := ParseEventLine(line)
		if err != nil {
			return
		}
		out, err := FormatEvent(&ev)
		if err != nil {
			t.Fatalf("FormatEvent rejected a parsed event %+v: %v", ev, err)
		}
		ev2, err := ParseEventLine(out)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", out, err)
		}
		out2, err := FormatEvent(&ev2)
		if err != nil {
			t.Fatalf("re-format failed: %v", err)
		}
		if out != out2 {
			t.Fatalf("event line not stable: %q vs %q", out, out2)
		}
		if strings.TrimSpace(line) != "" && ev.Kind.String() == "" {
			t.Fatalf("parsed event has no kind: %+v", ev)
		}
	})
}
