package serve

import (
	"repro/internal/chaos"
	"repro/internal/model"
)

// LifecycleConfig makes the daemon's instances genuinely serverless: idle
// instances scale to zero, a deterministic sizer keeps a warm pool against
// returning demand, and cold starts carry a latency price. The zero value
// disables the whole lifecycle (the daemon then manages placement exactly
// like the batch simulator: instances live until evicted or re-planned).
type LifecycleConfig struct {
	// IdleEpochs is the number of consecutive epochs an instance must serve
	// no request step before it is eligible for scale-to-zero. 0 disables
	// idle reaping (and with it the whole lifecycle).
	IdleEpochs int
	// WarmPool is the per-service floor of instances the reaper keeps alive
	// regardless of idleness; the demand sizer can only raise it.
	WarmPool int
	// WarmWindow is the demand-history horizon (epochs) the warm-pool sizer
	// looks back over. Default 4.
	WarmWindow int
	// ReqsPerWarm is the per-epoch demand one warm instance is sized to
	// absorb: the sizer targets ceil(peakDemand/ReqsPerWarm) instances per
	// service. Default 8.
	ReqsPerWarm int
	// ColdStartDelay is the extra completion time (seconds) a chain step
	// pays on an instance deployed this epoch (model.ColdStartModel). 0
	// keeps the completion-time model bitwise identical to the legacy one.
	ColdStartDelay float64
}

// Enabled reports whether idle reaping is active.
func (c LifecycleConfig) Enabled() bool { return c.IdleEpochs > 0 }

func (c LifecycleConfig) withDefaults() LifecycleConfig {
	if c.WarmWindow <= 0 {
		c.WarmWindow = 4
	}
	if c.ReqsPerWarm <= 0 {
		c.ReqsPerWarm = 8
	}
	return c
}

// lifecycle is the daemon's per-instance serverless state: consecutive-idle
// counters and the per-service demand history feeding the warm-pool sizer.
// All state advances in deterministic (service, node) order.
type lifecycle struct {
	cfg  LifecycleConfig
	idle [][]int // consecutive epochs with no served chain step, per (svc, node)

	// demand[s] is a ring buffer of the last WarmWindow epochs' demand for
	// service s (requests whose chain contains s, deduplicated per request).
	demand [][]int
	pos    int
	filled int
}

func newLifecycle(cfg LifecycleConfig, m, v int) *lifecycle {
	cfg = cfg.withDefaults()
	l := &lifecycle{cfg: cfg, idle: make([][]int, m), demand: make([][]int, m)}
	for i := 0; i < m; i++ {
		l.idle[i] = make([]int, v)
		l.demand[i] = make([]int, cfg.WarmWindow)
	}
	return l
}

// observe folds one epoch into the lifecycle state: used marks the (svc,
// node) pairs that served at least one chain step (nil means nothing
// served), demand is this epoch's per-service request demand, and p is the
// placement that served. Deployed-but-unused instances age; everything else
// resets.
func (l *lifecycle) observe(used [][]bool, demand []int, p model.Placement) {
	for i := range l.idle {
		for k := range l.idle[i] {
			switch {
			case !p.Has(i, k):
				l.idle[i][k] = 0
			case used != nil && used[i][k]:
				l.idle[i][k] = 0
			default:
				l.idle[i][k]++
			}
		}
		l.demand[i][l.pos] = demand[i]
	}
	l.pos = (l.pos + 1) % l.cfg.WarmWindow
	if l.filled < l.cfg.WarmWindow {
		l.filled++
	}
}

// target is the deterministic warm-pool sizer: the number of instances of
// service s worth keeping warm, ceil(peak windowed demand / ReqsPerWarm),
// floored at WarmPool.
func (l *lifecycle) target(s int) int {
	peak := 0
	for w := 0; w < l.filled; w++ {
		if d := l.demand[s][w]; d > peak {
			peak = d
		}
	}
	t := (peak + l.cfg.ReqsPerWarm - 1) / l.cfg.ReqsPerWarm
	if t < l.cfg.WarmPool {
		t = l.cfg.WarmPool
	}
	return t
}

// reap scales idle instances to zero: every deployed instance idle for at
// least IdleEpochs is removed — in ascending (svc, node) order — unless that
// would drop the service below its warm-pool target, in which case it is
// kept as a warm spare. Removing an unused instance cannot change any
// optimal/greedy route (the delta engine's deletion-stability argument), so
// reaping only reduces cost; the caller's evaluator picks the saving up via
// AdvanceTo.
func (l *lifecycle) reap(p model.Placement) (removed []chaos.Inst, spares int) {
	for i := range l.idle {
		count := p.Count(i)
		tgt := l.target(i)
		for k := range l.idle[i] {
			if !p.Has(i, k) || l.idle[i][k] < l.cfg.IdleEpochs {
				continue
			}
			if count <= tgt {
				spares++
				continue
			}
			p.Set(i, k, false)
			l.idle[i][k] = 0
			count--
			removed = append(removed, chaos.Inst{Svc: i, Node: k})
		}
	}
	return removed, spares
}
