package serve

import (
	"fmt"
	"math"
	"time"

	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/repair"
	"repro/internal/topology"
)

// EpochContext is one epoch's reaction input: the substrate as faulted, the
// workload as currently admitted, and the placement that was planned before
// the epoch's damage struck. Both the simulator's fault branches and the
// daemon's event loop build one of these per epoch and dispatch through the
// same Policy implementations, so the two paths cannot drift.
type EpochContext struct {
	// In is the epoch's instance on the *base* graph (repair and the mask
	// derive masked views themselves), carrying the epoch's live requests.
	In *model.Instance
	// Mask is the accumulated substrate fault state.
	Mask *chaos.Mask
	// Planned is the placement meeting this epoch — possibly stale relative
	// to the damage.
	Planned model.Placement
	// Mode and Seed select request routing (Seed feeds RouteModeRandom).
	Mode model.RoutingMode
	Seed int64
	// Repair tunes the incremental engine; Mode and Seed above override its
	// routing fields.
	Repair repair.Config
	// Resolve recomputes a placement from scratch on the masked instance it
	// is handed. Required by ResolvePolicy and AutoPolicy escalation.
	Resolve func(*model.Instance) (model.Placement, error)
	// PlannerName labels Resolve in error messages.
	PlannerName string
}

// Outcome reports what actually served an epoch.
type Outcome struct {
	// Placement is the placement that served (on the masked substrate).
	Placement model.Placement
	// Eval is its exact evaluation on the masked substrate.
	Eval *model.Evaluation
	// ReactTime is the wall-clock cost of the reaction (repair or re-solve).
	ReactTime time.Duration
	// Added and Evicted list repair's placement changes in commit order.
	Added, Evicted []chaos.Inst
	// RolledBack counts repair candidates scored and reverted.
	RolledBack int
	// Resolved reports that a full re-solve produced the placement.
	Resolved bool
}

// Policy decides how a stale placement meets a damaged (or merely busier)
// substrate each epoch.
type Policy interface {
	Name() string
	Serve(ctx *EpochContext) (Outcome, error)
}

// NonePolicy serves whatever survived: instances on crashed nodes are gone
// and their requests degrade to the cloud or go unserved. The no-repair
// lower bound (the simulator's PolicyNone branch).
type NonePolicy struct{}

// Name implements Policy.
func (NonePolicy) Name() string { return "none" }

// Serve implements Policy.
func (NonePolicy) Serve(ctx *EpochContext) (Outcome, error) {
	masked, _ := ctx.Mask.MaskPlacement(ctx.Planned)
	ev := ctx.Mask.Instance(ctx.In).EvaluateRouted(masked, ctx.Mode, ctx.Seed)
	return Outcome{Placement: masked, Eval: ev}, nil
}

// RepairPolicy runs the incremental repair engine on the stale placement:
// re-route, evict to restore feasibility, greedily re-provision (the
// simulator's PolicyRepair branch, and the daemon's per-epoch reaction).
type RepairPolicy struct {
	// Run, when non-nil, replaces the direct repair.Run call. This is the
	// seam through which a warm-started online solver both performs the
	// repair and adopts its result as the next slot's warm state
	// (core.OnlineSolver.Repair); nil runs the engine standalone.
	Run func(in *model.Instance, m *chaos.Mask, p model.Placement, cfg repair.Config) (*repair.Result, error)
}

// Name implements Policy.
func (RepairPolicy) Name() string { return "repair" }

// Serve implements Policy.
func (p RepairPolicy) Serve(ctx *EpochContext) (Outcome, error) {
	rcfg := ctx.Repair
	rcfg.Mode = ctx.Mode
	rcfg.Seed = ctx.Seed
	//socllint:ignore detrand wall-clock reaction time is reported, never branched on
	t0 := time.Now()
	var res *repair.Result
	var err error
	if p.Run != nil {
		res, err = p.Run(ctx.In, ctx.Mask, ctx.Planned, rcfg)
	} else {
		res = repair.Run(ctx.In, ctx.Mask, ctx.Planned, rcfg)
	}
	//socllint:ignore detrand wall-clock reaction time is reported, never branched on
	rt := time.Since(t0)
	if err != nil {
		return Outcome{}, fmt.Errorf("repair failed: %w", err)
	}
	return Outcome{
		Placement:  res.Placement,
		Eval:       res.After,
		ReactTime:  rt,
		Added:      res.Added,
		Evicted:    res.Evicted,
		RolledBack: res.RolledBack,
	}, nil
}

// ResolvePolicy re-runs the full placement algorithm on the post-fault
// masked substrate: the expensive reference an incremental repair competes
// with (the simulator's PolicyResolve branch).
type ResolvePolicy struct{}

// Name implements Policy.
func (ResolvePolicy) Name() string { return "resolve" }

// Serve implements Policy.
func (ResolvePolicy) Serve(ctx *EpochContext) (Outcome, error) {
	mi := ctx.Mask.Instance(ctx.In)
	//socllint:ignore detrand wall-clock reaction time is reported, never branched on
	t0 := time.Now()
	p2, err := ctx.Resolve(mi)
	//socllint:ignore detrand wall-clock reaction time is reported, never branched on
	rt := time.Since(t0)
	if err != nil {
		return Outcome{}, fmt.Errorf("%s re-solve failed: %w", ctx.PlannerName, err)
	}
	ev := mi.EvaluateRouted(p2, ctx.Mode, ctx.Seed)
	return Outcome{Placement: p2, Eval: ev, ReactTime: rt, Resolved: true}, nil
}

// AutoPolicy is the daemon's default reaction: always repair incrementally,
// and escalate to a full re-solve only when the post-repair score still
// leaves more than Threshold of the epoch's requests unserved. The re-solve
// outcome is adopted only if it beats the repair under the same lexicographic
// ⟨unserved, served-part objective⟩ order the repair engine optimizes, so
// the daemon never serves worse for having escalated.
type AutoPolicy struct {
	// Threshold is the tolerated post-repair unserved fraction in (0,1];
	// a negative value disables escalation entirely. Zero escalates on any
	// unserved request.
	Threshold float64
	// Repair performs the incremental round (its Run seam is honored).
	Repair RepairPolicy
}

// Name implements Policy.
func (AutoPolicy) Name() string { return "auto" }

// Serve implements Policy.
func (p AutoPolicy) Serve(ctx *EpochContext) (Outcome, error) {
	out, err := p.Repair.Serve(ctx)
	if err != nil || p.Threshold < 0 || ctx.Resolve == nil {
		return out, err
	}
	n := len(ctx.In.Workload.Requests)
	if n == 0 || float64(out.Eval.Unserved()) <= p.Threshold*float64(n) {
		return out, nil
	}
	rout, rerr := ResolvePolicy{}.Serve(ctx)
	if rerr != nil {
		// The repair outcome still serves; escalation failure is not fatal.
		return out, nil
	}
	rout.ReactTime += out.ReactTime
	if betterOutcome(ctx.In, &rout, &out) {
		return rout, nil
	}
	out.ReactTime = rout.ReactTime
	return out, nil
}

// betterOutcome orders outcomes by ⟨unserved, served-part objective⟩ with
// the evaluator's objective tolerance, mirroring the repair engine's score.
func betterOutcome(in *model.Instance, a, b *Outcome) bool {
	ua, ub := a.Eval.Unserved(), b.Eval.Unserved()
	if ua != ub {
		return ua < ub
	}
	return servedObjective(in, a.Eval) < servedObjective(in, b.Eval)-model.ObjTol
}

// servedObjective is the Eq. 3/8 objective over the requests an evaluation
// actually served: the raw objective saturates at +Inf the moment one
// request goes unserved, so cross-policy comparisons need the finite part.
// Bitwise equal to the simulator's ServedObjective column by construction
// (same index-order summation of finite latencies).
func servedObjective(in *model.Instance, ev *model.Evaluation) float64 {
	sum := 0.0
	for _, d := range ev.Latencies {
		if math.IsInf(d, 1) {
			continue
		}
		sum += d
	}
	return in.Objective(ev.Cost, sum)
}

// CountDegraded counts edge-served requests in ev that completed slower than
// the no-fault reference — the planned placement evaluated on the pristine
// base-graph instance with the same homes (the simulator's Degraded column;
// shared so the daemon's replay stays bit-identical).
func CountDegraded(in *model.Instance, planned model.Placement, ev *model.Evaluation, mode model.RoutingMode, seed int64) int {
	ref := in.EvaluateRouted(planned, mode, seed)
	degraded := 0
	for h := range ev.Latencies {
		if ev.Routes[h].Nodes == nil || math.IsInf(ev.Latencies[h], 1) {
			continue
		}
		if ev.Latencies[h] > ref.Latencies[h]+model.FeasTol {
			degraded++
		}
	}
	return degraded
}

// Relocator returns the deterministic re-homing rule for displaced users and
// requests: a node maps to itself while up, otherwise to the nearest up node
// by base-graph path cost (first minimum in ascending node order; lowest-ID
// up node if no finite path; the node itself if nothing is up). Results are
// memoized per returned closure, so build one per epoch.
func Relocator(m *chaos.Mask, g *topology.Graph) func(int) int {
	target := make([]int, g.N())
	for k := range target {
		target[k] = -1
	}
	return func(k int) int {
		if m.NodeUp(k) {
			return k
		}
		if target[k] >= 0 {
			return target[k]
		}
		best, bestCost := -1, math.Inf(1)
		for q := 0; q < g.N(); q++ {
			if !m.NodeUp(q) {
				continue
			}
			if c := g.PathCost(k, q); best < 0 || c < bestCost {
				best, bestCost = q, c
			}
		}
		if best < 0 {
			best = k // no node is up; keep the home (the mask floor prevents this)
		}
		target[k] = best
		return best
	}
}

// RehomeRequests moves every request homed on a down node to the nearest up
// node under Relocator's rule, returning the number of requests moved.
func RehomeRequests(m *chaos.Mask, g *topology.Graph, reqs []msvc.Request) int {
	if m.Pristine() {
		return 0
	}
	relocate := Relocator(m, g)
	moved := 0
	for i := range reqs {
		if nh := relocate(reqs[i].Home); nh != reqs[i].Home {
			reqs[i].Home = nh
			moved++
		}
	}
	return moved
}
