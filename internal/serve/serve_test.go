package serve

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/repair"
	"repro/internal/topology"
)

func testScenario(t *testing.T, nodes, users int, seed int64) (*topology.Graph, *msvc.Catalog, []msvc.Request) {
	t.Helper()
	g := topology.RandomGeometric(nodes, 0.4, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	w, err := msvc.GenerateWorkload(cat, g, msvc.DefaultWorkloadConfig(users), seed)
	if err != nil {
		t.Fatal(err)
	}
	return g, cat, w.Requests
}

func testConfig(g *topology.Graph, cat *msvc.Catalog) Config {
	return Config{
		Graph:   g,
		Catalog: cat,
		Lambda:  0.5,
		Budget:  8000,
		Mode:    model.RouteModeOptimal,
		Planner: func(in *model.Instance) (model.Placement, error) {
			sol, err := core.Solve(in, core.DefaultConfig())
			if err != nil {
				return model.Placement{}, err
			}
			return sol.Placement, nil
		},
		PlannerName: "SoCL",
	}
}

func arrivals(slot, startID int, reqs []msvc.Request) []Event {
	evs := make([]Event, len(reqs))
	for i := range reqs {
		evs[i] = Event{Slot: slot, Kind: EvArrive, ID: startID + i, Node: reqs[i].Home, Req: reqs[i]}
	}
	return evs
}

// TestDaemonScaleToZero: once the workload departs, every instance must age
// out and scale to zero (the demand window drains, so the warm-pool target
// falls to nothing), and a returning request must be served again — paying
// cold starts on the re-provisioned instances.
func TestDaemonScaleToZero(t *testing.T) {
	g, cat, reqs := testScenario(t, 8, 6, 71)
	cfg := testConfig(g, cat)
	cfg.Lifecycle = LifecycleConfig{IdleEpochs: 2, WarmWindow: 3, ColdStartDelay: 0.5}
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Ingest(arrivals(0, 0, reqs)...)
	rec, err := d.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Arrived != len(reqs) || !rec.Resolved {
		t.Fatalf("first epoch: arrived=%d resolved=%v", rec.Arrived, rec.Resolved)
	}
	if rec.ColdSteps == 0 {
		t.Fatal("the initial solve's instances should all start cold")
	}
	deployed := d.Placement().Instances()
	if deployed == 0 {
		t.Fatal("nothing deployed")
	}

	for i := range reqs {
		d.Ingest(Event{Slot: 1, Kind: EvDepart, ID: i})
	}
	scaled := 0
	for e := 0; e < 8; e++ {
		rec, err := d.Tick()
		if err != nil {
			t.Fatal(err)
		}
		scaled += rec.ScaledToZero
	}
	if scaled != deployed {
		t.Fatalf("scaled %d of %d instances to zero", scaled, deployed)
	}
	if d.Placement().Instances() != 0 {
		t.Fatalf("%d instances survive an empty demand window", d.Placement().Instances())
	}

	d.Ingest(arrivals(d.Epoch(), 100, reqs[:1])...)
	rec, err = d.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Requests != 1 || rec.Missing+rec.Unroutable > 0 {
		t.Fatalf("returning request not served: %+v", rec)
	}
	if rec.Adds == 0 && !rec.Resolved {
		t.Fatal("service resumed without provisioning anything")
	}
	if rec.ColdSteps == 0 {
		t.Fatal("a scale-from-zero epoch must pay cold starts")
	}
}

// TestDaemonIncrementalEpochs: steady epochs (no events) must be served by
// the delta evaluator, not a policy, and produce the same numbers as the
// reacting epoch before them.
func TestDaemonIncrementalEpochs(t *testing.T) {
	g, cat, reqs := testScenario(t, 8, 6, 72)
	d, err := NewDaemon(testConfig(g, cat))
	if err != nil {
		t.Fatal(err)
	}
	d.Ingest(arrivals(0, 0, reqs)...)
	first, err := d.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if first.Incremental {
		t.Fatal("first epoch cannot be incremental")
	}
	for e := 0; e < 3; e++ {
		rec, err := d.Tick()
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Incremental {
			t.Fatalf("steady epoch %d ran a policy", rec.Epoch)
		}
		//socllint:ignore floateq steady epochs must reproduce the exact bits, not approximately
		if rec.Objective != first.Objective || rec.Cost != first.Cost {
			t.Fatalf("steady epoch %d drifted: obj %v vs %v", rec.Epoch, rec.Objective, first.Objective)
		}
	}
}

// TestDaemonFaultReaction: a node crash must trigger a policy epoch (not an
// incremental one) and keep serving what can be served.
func TestDaemonFaultReaction(t *testing.T) {
	g, cat, reqs := testScenario(t, 8, 6, 75)
	d, err := NewDaemon(testConfig(g, cat))
	if err != nil {
		t.Fatal(err)
	}
	d.Ingest(arrivals(0, 0, reqs)...)
	if _, err := d.Tick(); err != nil {
		t.Fatal(err)
	}
	crash := -1
	for k := 0; k < g.N() && crash < 0; k++ {
		for i := 0; i < cat.Len(); i++ {
			if d.Placement().Has(i, k) {
				crash = k
				break
			}
		}
	}
	if crash < 0 {
		t.Fatal("nothing deployed to crash")
	}
	d.Ingest(Event{Slot: 1, Kind: EvFault, Fault: chaos.Event{Kind: chaos.NodeCrash, Node: crash}})
	rec, err := d.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Incremental {
		t.Fatal("a fault epoch took the incremental path")
	}
	if rec.FaultEvents != 1 || rec.DownNodes != 1 {
		t.Fatalf("fault telemetry: %+v", rec)
	}
	if rec.Missing+rec.Unroutable > 0 && rec.Adds == 0 && !rec.Resolved {
		t.Fatal("service lost and no reaction recorded")
	}
}

// TestDaemonBatching: MaxBatch must admit exactly N arrivals per epoch and
// defer the overflow in admission order.
func TestDaemonBatching(t *testing.T) {
	g, cat, reqs := testScenario(t, 8, 8, 73)
	if len(reqs) < 5 {
		t.Skipf("scenario too small: %d requests", len(reqs))
	}
	reqs = reqs[:5]
	cfg := testConfig(g, cat)
	cfg.MaxBatch = 2
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Ingest(arrivals(0, 0, reqs)...)
	var admitted []int
	for e := 0; e < 4; e++ {
		rec, err := d.Tick()
		if err != nil {
			t.Fatal(err)
		}
		admitted = append(admitted, rec.Arrived)
	}
	want := []int{2, 2, 1, 0}
	for i := range want {
		if admitted[i] != want[i] {
			t.Fatalf("admissions per epoch = %v, want %v", admitted, want)
		}
	}
	if d.ActiveRequests() != 5 {
		t.Fatalf("active = %d, want 5", d.ActiveRequests())
	}
	// Deferred arrivals keep admission order: active IDs must be 0..4.
	for i := 0; i < 5; i++ {
		if d.findActive(i) != i {
			t.Fatalf("request %d admitted out of order (index %d)", i, d.findActive(i))
		}
	}
}

// noopRepair is a repair that refuses to change anything: the stale placement
// is returned with its own evaluation, leaving every unserved request
// unserved. It forces AutoPolicy's escalation branch through the Run seam.
func noopRepair(in *model.Instance, m *chaos.Mask, p model.Placement, rc repair.Config) (*repair.Result, error) {
	ev := m.Instance(in).EvaluateRouted(p, rc.Mode, rc.Seed)
	return &repair.Result{Placement: p, Before: ev, After: ev}, nil
}

// TestAutoPolicyEscalates: when repair leaves more than Threshold of the
// epoch unserved, AutoPolicy must fall through to the full re-solve — and
// must not when escalation is disabled.
func TestAutoPolicyEscalates(t *testing.T) {
	g, cat, reqs := testScenario(t, 8, 6, 74)
	cfg := testConfig(g, cat)
	in := &model.Instance{
		Graph:    g,
		Workload: &msvc.Workload{Catalog: cat, Requests: reqs},
		Lambda:   0.5,
		Budget:   8000,
	}
	ctx := &EpochContext{
		In:          in,
		Mask:        chaos.NewMask(g),
		Planned:     model.NewPlacement(cat.Len(), g.N()),
		Mode:        model.RouteModeOptimal,
		Seed:        1,
		Resolve:     cfg.Planner,
		PlannerName: cfg.PlannerName,
	}
	out, err := AutoPolicy{Threshold: 0.5, Repair: RepairPolicy{Run: noopRepair}}.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Resolved {
		t.Fatal("auto policy did not escalate past a useless repair")
	}
	if out.Eval.Unserved() != 0 {
		t.Fatalf("escalated outcome still leaves %d unserved", out.Eval.Unserved())
	}

	out, err = AutoPolicy{Threshold: -1, Repair: RepairPolicy{Run: noopRepair}}.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out.Resolved || out.Eval.Unserved() == 0 {
		t.Fatal("negative threshold escalated anyway")
	}
}

// TestParseScriptErrors: malformed script lines must fail with the line
// number, not be skipped.
func TestParseScriptErrors(t *testing.T) {
	const meta = "meta nodes=4 radius=0x1p-1 toposeed=1 catseed=1 lambda=0x1p-1 budget=0x1p13 slotmin=0x1.4p2 slots=2 routeseed=9 cloudtransfer=0 cloudcompute=0\n"
	cases := []struct {
		name, text, want string
	}{
		{"no meta", "arrive 0 0 1 0x1p0 0x1p0 +Inf 1,2 0x1p-1\n", "meta"},
		{"bad directive", meta + "frobnicate 0 1\n", "line 2"},
		{"edge mismatch", meta + "arrive 0 0 1 0x1p0 0x1p0 +Inf 1,2,3 0x1p-1\n", "line 2"},
		{"bad fault kind", meta + "fault 0 gamma-ray 3\n", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScript(strings.NewReader(tc.text))
			if err == nil {
				t.Fatal("malformed script parsed cleanly")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestWarmPoolSizer: the deterministic sizer must track the windowed demand
// peak and honor the WarmPool floor.
func TestWarmPoolSizer(t *testing.T) {
	l := newLifecycle(LifecycleConfig{IdleEpochs: 1, WarmPool: 1, WarmWindow: 2, ReqsPerWarm: 4}, 2, 3)
	p := model.NewPlacement(2, 3)
	l.observe(nil, []int{9, 0}, p) // demand 9 → ceil(9/4) = 3 warm
	if got := l.target(0); got != 3 {
		t.Fatalf("target(0) = %d, want 3", got)
	}
	if got := l.target(1); got != 1 { // floor
		t.Fatalf("target(1) = %d, want the WarmPool floor 1", got)
	}
	l.observe(nil, []int{0, 0}, p)
	if got := l.target(0); got != 3 { // peak still inside the window
		t.Fatalf("target(0) after one idle epoch = %d, want 3", got)
	}
	l.observe(nil, []int{0, 0}, p)
	if got := l.target(0); got != 1 { // window drained; floor remains
		t.Fatalf("target(0) after the window drained = %d, want 1", got)
	}
}

// TestReapRespectsWarmTarget: idle instances above the target go first (in
// ascending order), the rest are kept as spares.
func TestReapRespectsWarmTarget(t *testing.T) {
	l := newLifecycle(LifecycleConfig{IdleEpochs: 2, WarmPool: 1, WarmWindow: 2, ReqsPerWarm: 8}, 1, 4)
	p := model.NewPlacement(1, 4)
	for k := 0; k < 3; k++ {
		p.Set(0, k, true)
	}
	l.observe(nil, []int{0}, p)
	l.observe(nil, []int{0}, p) // all three idle for 2 epochs
	removed, spares := l.reap(p)
	if len(removed) != 2 || spares != 1 {
		t.Fatalf("removed %v, spares %d; want 2 removals and 1 spare", removed, spares)
	}
	if !p.Has(0, 2) || p.Has(0, 0) || p.Has(0, 1) {
		t.Fatalf("reap order wrong: %v survives", p.NodesOf(0))
	}
}
