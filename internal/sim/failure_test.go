package sim

import (
	"errors"
	"testing"

	"repro/internal/core"

	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/topology"
)

type errAlgo struct{}

func (errAlgo) Name() string               { return "err" }
func (errAlgo) Routing() model.RoutingMode { return model.RouteModeOptimal }
func (errAlgo) Place(*model.Instance) (model.Placement, error) {
	return model.Placement{}, errors.New("nope")
}

func TestAlgorithmErrorPropagates(t *testing.T) {
	g := topology.RandomGeometric(6, 0.4, topology.DefaultGenConfig(), 31)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), 31)
	cfg := DefaultConfig(g, cat, 5, 31)
	cfg.DurationMinutes = 10
	res, err := Run(cfg, errAlgo{})
	if err == nil {
		t.Fatal("algorithm error swallowed")
	}
	// Mid-run failures return the partial result covering completed slots.
	if res == nil {
		t.Fatal("mid-run error dropped the partial result")
	}
	if len(res.Slots) >= int(cfg.DurationMinutes/cfg.SlotMinutes) {
		t.Fatalf("partial result claims %d completed slots despite failing", len(res.Slots))
	}
	for _, s := range res.Slots {
		if s.Requests != 0 {
			t.Fatalf("slot %d with requests recorded before the failing Place", s.Slot)
		}
	}
}

func TestZeroMeanInterarrivalDefaults(t *testing.T) {
	g := topology.RandomGeometric(6, 0.4, topology.DefaultGenConfig(), 32)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), 32)
	cfg := DefaultConfig(g, cat, 5, 32)
	cfg.DurationMinutes = 10
	cfg.MeanInterarrival = 0
	res, err := Run(cfg, JDR{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slots) == 0 {
		t.Fatal("no slots simulated")
	}
}

func TestEmptyResultAccessors(t *testing.T) {
	r := &Result{}
	if r.MaxDelay() != 0 || r.MedianDelay() != 0 || r.TotalCost() != 0 {
		t.Fatal("empty-result accessors should return 0")
	}
}

func TestSoCLOnlineAdapterAccumulatesChurn(t *testing.T) {
	g := topology.RandomGeometric(8, 0.4, topology.DefaultGenConfig(), 33)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), 33)
	algo := NewSoCLOnline(coreDefault())
	cfg := DefaultConfig(g, cat, 12, 33)
	cfg.DurationMinutes = 25
	cfg.MoveProb = 0.9
	if _, err := Run(cfg, algo); err != nil {
		t.Fatal(err)
	}
	if algo.Churn < 0 {
		t.Fatalf("negative churn %d", algo.Churn)
	}
}

// coreDefault avoids importing core in multiple test files' import blocks.
func coreDefault() core.Config { return core.DefaultConfig() }
