package sim

// This file wires the chaos fault injector and the repair engine into the
// slot loop. The timeline within one faulty slot is deliberately causal:
//
//  1. the algorithm plans on the substrate as currently known (the mask
//     state left by previous slots — outages it has already observed);
//  2. the slot's fault events strike (healings first, then new faults);
//  3. users homed on freshly-crashed nodes re-home to the nearest up node;
//  4. the configured FaultPolicy decides how the stale plan meets the new
//     substrate — serve the damaged placement as-is, repair it
//     incrementally, or re-solve from scratch;
//  5. the exact evaluator scores whatever placement actually serves, on the
//     masked substrate.
//
// A nil Config.Faults bypasses every step above and preserves the legacy
// no-fault path byte for byte (same RNG draws, same records).

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/msvc"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/topology"
)

// FaultPolicy selects how a slot's placement responds to substrate damage.
type FaultPolicy int

const (
	// PolicyNone serves the damaged placement as-is: instances on crashed
	// nodes are simply gone and their requests degrade to the cloud or go
	// unserved. The "no repair" lower bound.
	PolicyNone FaultPolicy = iota
	// PolicyRepair runs the incremental repair engine (internal/repair) on
	// the damaged placement: re-route, evict to restore feasibility, greedily
	// re-provision lost instances. The SoCL answer.
	PolicyRepair
	// PolicyResolve re-runs the full placement algorithm on the post-fault
	// substrate: the expensive reference an incremental repair competes with.
	PolicyResolve
)

func (p FaultPolicy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyRepair:
		return "repair"
	case PolicyResolve:
		return "resolve"
	default:
		// Out-of-range values used to collapse to "none", which made a
		// mis-parsed flag silently run the no-repair lower bound.
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// policyFor maps a FaultPolicy onto the shared serve.Policy layer for algo.
// An algorithm that implements repairDriver gets to drive the repair engine
// itself (core.OnlineSolver composes repair with its warm state).
func policyFor(p FaultPolicy, algo Algorithm) serve.Policy {
	switch p {
	case PolicyRepair:
		rp := serve.RepairPolicy{}
		if drv, ok := algo.(repairDriver); ok {
			rp.Run = drv.RepairWith
		}
		return rp
	case PolicyResolve:
		return serve.ResolvePolicy{}
	default:
		return serve.NonePolicy{}
	}
}

// rehomeUsers moves every user — and every pending request — homed on a down
// node to the nearest up node by base-graph path cost (first minimum in
// ascending node order, so ties break to the lowest ID; if the base graph
// gives no finite path, the lowest-ID up node). It returns the number of
// users moved. Purely deterministic: no RNG draws.
func rehomeUsers(m *chaos.Mask, g *topology.Graph, homes []int, reqs []msvc.Request) int {
	if m.Pristine() {
		return 0
	}
	relocate := serve.Relocator(m, g)
	moved := 0
	for u := range homes {
		if nh := relocate(homes[u]); nh != homes[u] {
			homes[u] = nh
			moved++
		}
	}
	for i := range reqs {
		reqs[i].Home = relocate(reqs[i].Home)
	}
	return moved
}

// routeSeed derives the per-slot routing seed (RouteModeRandom streams).
func routeSeed(cfg Config, slot int) int64 {
	return stats.SplitSeed(cfg.Seed, "sim/route") + int64(slot)
}

// Unserved returns the slot's requests that got no service at all — no
// deployed instance of a chain service (Missing) or instances deployed but
// unreachable over the masked substrate (Unroutable).
func (s SlotRecord) Unserved() int { return s.Missing + s.Unroutable }

// TotalMissing sums requests that found no instance of a chain service
// (model.ErrNoInstance with no cloud fallback) across the run.
func (r *Result) TotalMissing() int {
	n := 0
	for _, s := range r.Slots {
		n += s.Missing
	}
	return n
}

// TotalUnroutable sums requests whose chain services were deployed yet
// unreachable (+Inf completion time) across the run.
func (r *Result) TotalUnroutable() int {
	n := 0
	for _, s := range r.Slots {
		n += s.Unroutable
	}
	return n
}

// TotalUnserved is TotalMissing + TotalUnroutable.
func (r *Result) TotalUnserved() int { return r.TotalMissing() + r.TotalUnroutable() }

// TotalCloudServed sums requests that fell back to the cloud across the run.
func (r *Result) TotalCloudServed() int {
	n := 0
	for _, s := range r.Slots {
		n += s.CloudServed
	}
	return n
}

// TotalDegraded sums edge-served requests that completed slower than the
// same slot's no-fault reference across the run.
func (r *Result) TotalDegraded() int {
	n := 0
	for _, s := range r.Slots {
		n += s.Degraded
	}
	return n
}

// TotalRequests sums per-slot request counts.
func (r *Result) TotalRequests() int {
	n := 0
	for _, s := range r.Slots {
		n += s.Requests
	}
	return n
}

// RecoveryRuns returns the lengths (in slots) of every maximal run of slots
// with unserved requests — the run's recovery times. A run still open when
// the simulation ends is included (a lower bound on its true length).
func (r *Result) RecoveryRuns() []int {
	var runs []int
	cur := 0
	for _, s := range r.Slots {
		if s.Unserved() > 0 {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	if cur > 0 {
		runs = append(runs, cur)
	}
	return runs
}

// RecoveryPercentile returns the p-th percentile (0–100, linear
// interpolation) of RecoveryRuns, or 0 when service was never lost. Recovery
// times are heavy-tailed under bursty fault schedules, so the tails say more
// than MeanRecoverySlots does.
func (r *Result) RecoveryPercentile(p float64) float64 {
	runs := r.RecoveryRuns()
	if len(runs) == 0 {
		return 0
	}
	xs := make([]float64, len(runs))
	for i, x := range runs {
		xs[i] = float64(x)
	}
	return stats.Percentile(xs, p)
}

// MeanRecoverySlots averages RecoveryRuns, or 0 when service was never lost.
func (r *Result) MeanRecoverySlots() float64 {
	runs := r.RecoveryRuns()
	if len(runs) == 0 {
		return 0
	}
	n := 0
	for _, x := range runs {
		n += x
	}
	return float64(n) / float64(len(runs))
}
