package sim

import (
	"math"
	"testing"

	"repro/internal/chaos"
)

// faultConfig builds a short faulty run over a crash-heavy schedule.
func faultConfig(t *testing.T, seed int64, policy FaultPolicy) Config {
	t.Helper()
	g, cat := testSetup(10, seed)
	cfg := shortConfig(g, cat, 12, seed)
	cfg.DurationMinutes = 60 // 12 slots
	numSlots := int(cfg.DurationMinutes / cfg.SlotMinutes)
	scfg := chaos.DefaultScheduleConfig()
	scfg.NodeFailProb = 0.15
	scfg.MinNodesUp = 3
	cfg.Faults = chaos.Generate(g, numSlots, scfg, seed)
	cfg.Policy = policy
	return cfg
}

func TestFaultRunDeterministic(t *testing.T) {
	a, err := Run(faultConfig(t, 41, PolicyRepair), JDR{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(faultConfig(t, 41, PolicyRepair), JDR{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.AllDelays) != len(b.AllDelays) {
		t.Fatalf("same seed, different delay counts: %d vs %d", len(a.AllDelays), len(b.AllDelays))
	}
	for i := range a.AllDelays {
		if math.Float64bits(a.AllDelays[i]) != math.Float64bits(b.AllDelays[i]) {
			t.Fatalf("delay %d differs: %v vs %v", i, a.AllDelays[i], b.AllDelays[i])
		}
	}
	for i := range a.Slots {
		x, y := a.Slots[i], b.Slots[i]
		if x.Missing != y.Missing || x.Unroutable != y.Unroutable ||
			x.CloudServed != y.CloudServed || x.Degraded != y.Degraded ||
			x.FaultEvents != y.FaultEvents || x.DownNodes != y.DownNodes ||
			x.Rehomed != y.Rehomed || x.RepairAdds != y.RepairAdds ||
			x.RepairEvict != y.RepairEvict ||
			math.Float64bits(x.Objective) != math.Float64bits(y.Objective) {
			t.Fatalf("slot %d records diverge between identical runs:\n%+v\n%+v", i, x, y)
		}
	}
}

// TestFaultTimelineRecorded: the schedule's faults must show up in the slot
// telemetry, and a crash-heavy run must disturb service at some point.
func TestFaultTimelineRecorded(t *testing.T) {
	res, err := Run(faultConfig(t, 42, PolicyNone), JDR{})
	if err != nil {
		t.Fatal(err)
	}
	events, down := 0, 0
	for _, s := range res.Slots {
		events += s.FaultEvents
		if s.DownNodes > 0 {
			down++
		}
	}
	if events == 0 {
		t.Fatal("no fault events recorded over a crash-heavy schedule")
	}
	if down == 0 {
		t.Fatal("no slot ever had a down node")
	}
	if res.TotalUnserved() != res.TotalMissing()+res.TotalUnroutable() {
		t.Fatal("aggregate identity broken")
	}
	if res.TotalUnserved() > 0 {
		runs := res.RecoveryRuns()
		if len(runs) == 0 || res.MeanRecoverySlots() <= 0 {
			t.Fatalf("unserved slots but no recovery runs: %v", runs)
		}
	}
}

// TestRepairPolicyNoWorseThanNone: with identical fault, mobility, and
// request streams (policies do not consume RNG), incremental repair can only
// reduce the damage the no-repair baseline reports.
func TestRepairPolicyNoWorseThanNone(t *testing.T) {
	none, err := Run(faultConfig(t, 43, PolicyNone), JDR{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(faultConfig(t, 43, PolicyRepair), JDR{})
	if err != nil {
		t.Fatal(err)
	}
	if none.TotalRequests() != rep.TotalRequests() {
		t.Fatalf("policies changed the request stream: %d vs %d", none.TotalRequests(), rep.TotalRequests())
	}
	if rep.TotalUnserved() > none.TotalUnserved() {
		t.Fatalf("repair unserved %d > no-repair %d", rep.TotalUnserved(), none.TotalUnserved())
	}
	adds := 0
	for _, s := range rep.Slots {
		adds += s.RepairAdds
	}
	if none.TotalUnserved() > 0 && adds == 0 {
		t.Fatal("service was lost yet repair never re-provisioned anything")
	}
}

// TestResolvePolicyRuns: the full re-solve reference completes and records
// its decision time.
func TestResolvePolicyRuns(t *testing.T) {
	res, err := Run(faultConfig(t, 44, PolicyResolve), JDR{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slots) == 0 {
		t.Fatal("no slots")
	}
}

// TestEmptyScheduleMatchesLegacy: a fault schedule with zero events must
// reproduce the no-fault run bit for bit — the masked view is the base
// substrate whenever the mask is pristine.
func TestEmptyScheduleMatchesLegacy(t *testing.T) {
	g, cat := testSetup(8, 45)
	base := shortConfig(g, cat, 10, 45)
	legacy, err := Run(base, JDR{})
	if err != nil {
		t.Fatal(err)
	}
	faulty := shortConfig(g, cat, 10, 45)
	faulty.Faults = &chaos.Schedule{NumSlots: int(faulty.DurationMinutes / faulty.SlotMinutes)}
	faulty.Policy = PolicyNone
	masked, err := Run(faulty, JDR{})
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy.AllDelays) != len(masked.AllDelays) {
		t.Fatalf("delay counts diverge: %d vs %d", len(legacy.AllDelays), len(masked.AllDelays))
	}
	for i := range legacy.AllDelays {
		if math.Float64bits(legacy.AllDelays[i]) != math.Float64bits(masked.AllDelays[i]) {
			t.Fatalf("delay %d diverges: %v vs %v", i, legacy.AllDelays[i], masked.AllDelays[i])
		}
	}
	for i := range legacy.Slots {
		if legacy.Slots[i].Degraded != 0 || masked.Slots[i].Degraded != 0 ||
			math.Float64bits(legacy.Slots[i].Objective) != math.Float64bits(masked.Slots[i].Objective) {
			t.Fatalf("slot %d diverges under an empty schedule", i)
		}
	}
}
