package sim

import (
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/repair"
)

// SoCLOnline adapts core.OnlineSolver: SoCL with warm-instance retention
// across slots, the paper's online operating mode. Unlike the stateless
// adapters it carries state and must be constructed with NewSoCLOnline and
// used for a single Run.
type SoCLOnline struct {
	solver *core.OnlineSolver
	// Churn accumulates instances started+stopped across slots (excluding
	// the cold start), for the online-vs-oneshot comparison experiments.
	Churn int
	slots int
}

// NewSoCLOnline returns a fresh online SoCL adapter.
func NewSoCLOnline(cfg core.Config) *SoCLOnline {
	return &SoCLOnline{solver: core.NewOnlineSolver(cfg)}
}

// Name implements Algorithm.
func (*SoCLOnline) Name() string { return "SoCL-online" }

// Routing implements Algorithm.
func (*SoCLOnline) Routing() model.RoutingMode { return model.RouteModeOptimal }

// Place implements Algorithm.
func (s *SoCLOnline) Place(in *model.Instance) (model.Placement, error) {
	sol, st, err := s.solver.Step(in)
	if err != nil {
		return model.Placement{}, err
	}
	if s.slots > 0 {
		s.Churn += st.Started + st.Stopped
	}
	s.slots++
	return sol.Placement, nil
}

// RepairWith implements repairDriver: the online solver performs the repair
// and adopts the repaired placement as the next slot's warm state, so
// planned-ahead placements and fault repair compose (a repaired-away
// instance is not resurrected by the next slot's warm start).
func (s *SoCLOnline) RepairWith(in *model.Instance, m *chaos.Mask, p model.Placement, cfg repair.Config) (*repair.Result, error) {
	return s.solver.Repair(in, m, p, cfg)
}
