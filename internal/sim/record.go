package sim

import (
	"fmt"
	"math"

	"repro/internal/chaos"
	"repro/internal/serve"
	"repro/internal/stats"
)

// EventStream records the exact event stream a Run over cfg would experience
// — request arrivals with their stochastic chains and homes, per-slot
// departures (the simulator's requests live one slot), user mobility as home
// moves, and fault strikes — as a serve.Script the placement daemon can
// ingest. It replays Run's RNG draws in the identical order (same split
// seeds), so feeding the script to a daemon in replay mode reproduces the
// batch run bitwise (see CompareReplay).
//
// Arrival events carry the homes as generated, before any re-homing: the
// daemon re-homes its admitted requests against its own mask, exactly where
// Run does.
func EventStream(cfg Config) (*serve.Script, error) {
	if cfg.Graph == nil || cfg.Catalog == nil {
		return nil, fmt.Errorf("sim: nil graph or catalog")
	}
	if cfg.NumUsers <= 0 || cfg.SlotMinutes <= 0 || cfg.DurationMinutes <= 0 {
		return nil, fmt.Errorf("sim: non-positive sizing (users=%d slot=%v dur=%v)",
			cfg.NumUsers, cfg.SlotMinutes, cfg.DurationMinutes)
	}
	if cfg.MeanInterarrival <= 0 {
		cfg.MeanInterarrival = cfg.SlotMinutes
	}
	r := stats.NewRand(stats.SplitSeed(cfg.Seed, "sim/run"))
	flows := cfg.Catalog.Flows()
	if len(flows) == 0 {
		return nil, fmt.Errorf("sim: catalog has no flows")
	}
	var mask *chaos.Mask
	if cfg.Faults != nil {
		mask = chaos.NewMask(cfg.Graph)
	}

	homes := make([]int, cfg.NumUsers)
	for u := range homes {
		homes[u] = r.Intn(cfg.Graph.N())
	}

	numSlots := int(cfg.DurationMinutes / cfg.SlotMinutes)
	s := &serve.Script{Meta: serve.Meta{
		Nodes:       cfg.Graph.N(),
		Lambda:      cfg.Lambda,
		Budget:      cfg.Budget,
		SlotMinutes: cfg.SlotMinutes,
		NumSlots:    numSlots,
		RouteSeed:   stats.SplitSeed(cfg.Seed, "sim/route"),
	}}
	if cfg.Cloud != nil {
		s.Meta.CloudTransfer = cfg.Cloud.TransferCost
		s.Meta.CloudCompute = cfg.Cloud.Compute
	}

	nextID := 0
	var prev []int // IDs of the previous slot's arrivals (they depart now)
	for slot := 0; slot < numSlots; slot++ {
		// Mobility: the same draws Run makes, in the same order.
		for u := range homes {
			if r.Float64() < cfg.MoveProb {
				nb := cfg.Graph.Neighbors(homes[u])
				if len(nb) > 0 {
					hop := nb[r.Intn(len(nb))]
					if mask == nil || mask.NodeUp(hop) {
						homes[u] = hop
					}
				}
			}
		}
		reqs := makeSlotRequests(cfg, r, homes, flows)

		// Departures first: the simulator's requests live exactly one slot,
		// so the daemon's active set each epoch is that slot's arrivals, in
		// arrival order (RouteModeRandom keys on the active index).
		for _, id := range prev {
			s.Events = append(s.Events, serve.Event{Slot: slot, Kind: serve.EvDepart, ID: id})
		}
		prev = prev[:0]
		for i := range reqs {
			ev := serve.Event{Slot: slot, Kind: serve.EvArrive, ID: nextID, Node: reqs[i].Home, Req: reqs[i]}
			s.Events = append(s.Events, ev)
			prev = append(prev, nextID)
			nextID++
		}

		// Fault strikes are emitted after the arrivals: the daemon stages
		// them past its planning phase, matching Run's plan-then-strike slot
		// order. The recorder applies them to its own mask to keep the
		// mobility and re-homing draws aligned with Run's user state.
		if mask != nil {
			for _, e := range cfg.Faults.At(slot) {
				if err := mask.Apply(e); err != nil {
					return nil, fmt.Errorf("sim: recording fault %v: %w", e, err)
				}
				s.Events = append(s.Events, serve.Event{Slot: slot, Kind: serve.EvFault, Fault: e})
			}
			// Run re-homes users only on slots that generated requests.
			if len(reqs) > 0 {
				rehomeUsers(mask, cfg.Graph, homes, reqs)
			}
		}
	}
	return s, nil
}

// ReplayConfig maps a simulator configuration onto the daemon's replay mode:
// re-plan every epoch with the same algorithm, react with the same fault
// policy, route with the same per-epoch seeds. A daemon built from this
// config and fed EventStream(cfg) reproduces Run(cfg, algo) bitwise.
//
// Note algo is stateful for some algorithms (SoCLOnline): build a fresh one
// per daemon, exactly as for a fresh Run.
func ReplayConfig(cfg Config, algo Algorithm) serve.Config {
	pol := policyFor(cfg.Policy, algo)
	if cfg.Faults == nil {
		// A mask-free Run never enters the policy branch; the pristine-mask
		// equivalent is PolicyNone (serve the plan as-is).
		pol = serve.NonePolicy{}
	}
	return serve.Config{
		Graph:       cfg.Graph,
		Catalog:     cfg.Catalog,
		Lambda:      cfg.Lambda,
		Budget:      cfg.Budget,
		Cloud:       cfg.Cloud,
		Mode:        algo.Routing(),
		RouteSeed:   stats.SplitSeed(cfg.Seed, "sim/route"),
		Planner:     algo.Place,
		PlannerName: algo.Name(),
		Repair:      cfg.Repair,
		Policy:      pol,
		Replan:      true,
	}
}

// CompareReplay checks a daemon replay against a batch Run bitwise: every
// shared evaluation column of every slot, and the full latency stream. The
// first mismatch is returned (nil means bitwise equal). Rehomed is excluded
// by design — the simulator counts moved users, the daemon moved requests.
func CompareReplay(res *Result, rr *serve.RunResult) error {
	if len(res.Slots) != len(rr.Records) {
		return fmt.Errorf("slot count: sim %d, daemon %d", len(res.Slots), len(rr.Records))
	}
	for i := range res.Slots {
		s, d := res.Slots[i], rr.Records[i]
		if err := func() error {
			switch {
			case s.Requests != d.Requests:
				return fmt.Errorf("requests %d != %d", s.Requests, d.Requests)
			case !bitEq(s.Cost, d.Cost):
				return fmt.Errorf("cost %v != %v", s.Cost, d.Cost)
			case !bitEq(s.Objective, d.Objective):
				return fmt.Errorf("objective %v != %v", s.Objective, d.Objective)
			case !bitEq(s.ServedObjective, d.ServedObjective):
				return fmt.Errorf("served objective %v != %v", s.ServedObjective, d.ServedObjective)
			case !bitEq(s.AvgDelay, d.AvgDelay):
				return fmt.Errorf("avg delay %v != %v", s.AvgDelay, d.AvgDelay)
			case !bitEq(s.MaxDelay, d.MaxDelay):
				return fmt.Errorf("max delay %v != %v", s.MaxDelay, d.MaxDelay)
			case s.Missing != d.Missing:
				return fmt.Errorf("missing %d != %d", s.Missing, d.Missing)
			case s.Unroutable != d.Unroutable:
				return fmt.Errorf("unroutable %d != %d", s.Unroutable, d.Unroutable)
			case s.CloudServed != d.CloudServed:
				return fmt.Errorf("cloud-served %d != %d", s.CloudServed, d.CloudServed)
			case s.Degraded != d.Degraded:
				return fmt.Errorf("degraded %d != %d", s.Degraded, d.Degraded)
			case s.FaultEvents != d.FaultEvents:
				return fmt.Errorf("fault events %d != %d", s.FaultEvents, d.FaultEvents)
			case s.DownNodes != d.DownNodes:
				return fmt.Errorf("down nodes %d != %d", s.DownNodes, d.DownNodes)
			case s.RepairAdds != d.Adds:
				return fmt.Errorf("repair adds %d != %d", s.RepairAdds, d.Adds)
			case s.RepairEvict != d.Evicts:
				return fmt.Errorf("repair evicts %d != %d", s.RepairEvict, d.Evicts)
			}
			return nil
		}(); err != nil {
			return fmt.Errorf("slot %d: %w", i, err)
		}
	}
	if len(res.AllDelays) != len(rr.AllDelays) {
		return fmt.Errorf("delay stream length: sim %d, daemon %d", len(res.AllDelays), len(rr.AllDelays))
	}
	for i := range res.AllDelays {
		if !bitEq(res.AllDelays[i], rr.AllDelays[i]) {
			return fmt.Errorf("delay %d: sim %v, daemon %v", i, res.AllDelays[i], rr.AllDelays[i])
		}
	}
	return nil
}

// bitEq compares floats for bitwise equality (NaN-safe, unlike ==).
func bitEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
