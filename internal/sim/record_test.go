package sim

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

// replayOnce pins the tentpole acceptance criterion: a scripted event-stream
// run through the daemon is bitwise identical to the batch Run it records.
// algoA serves the batch run, algoB the daemon — stateful algorithms need a
// fresh one each.
func replayOnce(t *testing.T, cfg Config, algoA, algoB Algorithm) {
	t.Helper()
	res, err := Run(cfg, algoA)
	if err != nil {
		t.Fatal(err)
	}
	script, err := EventStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := serve.NewDaemon(ReplayConfig(cfg, algoB))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := d.RunScript(script)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareReplay(res, rr); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonReplayMatchesRun(t *testing.T) {
	for _, pol := range []FaultPolicy{PolicyNone, PolicyRepair, PolicyResolve} {
		t.Run(pol.String(), func(t *testing.T) {
			replayOnce(t, faultConfig(t, 51, pol), JDR{}, JDR{})
		})
	}
}

// TestDaemonReplayNoFaults: without a fault schedule the daemon's pristine
// mask must reproduce the simulator's mask-free fast path bitwise.
func TestDaemonReplayNoFaults(t *testing.T) {
	g, cat := testSetup(8, 52)
	cfg := shortConfig(g, cat, 10, 52)
	replayOnce(t, cfg, JDR{}, JDR{})
}

// TestDaemonReplayOnlineRepair exercises the repairDriver seam end to end:
// the warm-started online solver both plans and repairs in the batch run and
// in the daemon, and the two must still agree bitwise.
func TestDaemonReplayOnlineRepair(t *testing.T) {
	cfg := faultConfig(t, 53, PolicyRepair)
	replayOnce(t, cfg, NewSoCLOnline(core.DefaultConfig()), NewSoCLOnline(core.DefaultConfig()))
}

// TestEventStreamRoundTrip: the script text format must survive a
// write/parse/write cycle byte for byte — the daemon smoke test feeds scripts
// through files.
func TestEventStreamRoundTrip(t *testing.T) {
	cfg := faultConfig(t, 54, PolicyRepair)
	script, err := EventStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := serve.WriteScript(&buf, script); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	parsed, err := serve.ParseScript(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := serve.WriteScript(&buf2, parsed); err != nil {
		t.Fatal(err)
	}
	if first != buf2.String() {
		t.Fatal("script text changed across a write/parse/write cycle")
	}
	// And the parsed script must drive a bitwise-equal replay.
	res, err := Run(cfg, JDR{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := serve.NewDaemon(ReplayConfig(cfg, JDR{}))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := d.RunScript(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareReplay(res, rr); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonServeDeterministic pins the serve-mode event loop: two daemons
// with identical configs fed the identical script must agree bitwise on every
// record column that is not wall-clock time.
func TestDaemonServeDeterministic(t *testing.T) {
	cfg := faultConfig(t, 55, PolicyRepair)
	script, err := EventStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *serve.RunResult {
		sc := ReplayConfig(cfg, NewSoCLOnline(core.DefaultConfig()))
		sc.Replan = false
		sc.Policy = nil // default AutoPolicy
		sc.Lifecycle = serve.LifecycleConfig{IdleEpochs: 2, WarmPool: 1, ColdStartDelay: 0.5}
		d, err := serve.NewDaemon(sc)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := d.RunScript(script)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	a, b := run(), run()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts diverge: %d vs %d", len(a.Records), len(b.Records))
	}
	incremental, scaled := 0, 0
	for i := range a.Records {
		x, y := a.Records[i], b.Records[i]
		x.PlanTime, x.ReactTime = 0, 0
		y.PlanTime, y.ReactTime = 0, 0
		if x != y {
			t.Fatalf("epoch %d diverges between identical serve runs:\n%+v\n%+v", i, x, y)
		}
		if x.Incremental {
			incremental++
		}
		scaled += x.ScaledToZero
	}
	if len(a.AllDelays) != len(b.AllDelays) {
		t.Fatalf("delay streams diverge: %d vs %d", len(a.AllDelays), len(b.AllDelays))
	}
	for i := range a.AllDelays {
		if math.Float64bits(a.AllDelays[i]) != math.Float64bits(b.AllDelays[i]) {
			t.Fatalf("delay %d diverges: %v vs %v", i, a.AllDelays[i], b.AllDelays[i])
		}
	}
	_ = incremental
	if scaled == 0 {
		t.Log("note: no instance ever scaled to zero in this scenario")
	}
}

// TestFaultPolicyString: the table test for the out-of-range bugfix —
// unknown values must not collapse to "none".
func TestFaultPolicyString(t *testing.T) {
	cases := []struct {
		p    FaultPolicy
		want string
	}{
		{PolicyNone, "none"},
		{PolicyRepair, "repair"},
		{PolicyResolve, "resolve"},
		{FaultPolicy(3), "policy(3)"},
		{FaultPolicy(-1), "policy(-1)"},
		{FaultPolicy(42), "policy(42)"},
	}
	for _, tc := range cases {
		if got := tc.p.String(); got != tc.want {
			t.Errorf("FaultPolicy(%d).String() = %q, want %q", int(tc.p), got, tc.want)
		}
	}
}
