// Package sim is the testbed substitute for the paper's Kubernetes
// deployment (Section V-C): a time-slotted discrete-event simulator of a
// serverless edge cluster. Users move among edge nodes (random-waypoint over
// the topology), issue requests with stochastic dependency chains on a
// Poisson clock (mean ≈ 5 minutes), and at every slot the placement
// algorithm under test re-plans from the observed state — the paper's
// "one-shot decision-making". Per-request latencies are measured with the
// exact evaluator, so the algorithms are exercised through the identical
// decision path they would take against a real cluster.
package sim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Algorithm is a placement-and-routing policy under test. Routing returns
// the request-routing mode the algorithm pairs with its placements — the
// paper's algorithms are joint provisioning+routing schemes, so RP routes
// randomly, JDR greedily, and SoCL with optimized (exact DP) routing.
type Algorithm interface {
	Name() string
	// Place computes a provisioning decision for the instance observed at
	// the current slot.
	Place(in *model.Instance) (model.Placement, error)
	// Routing selects how this algorithm's placements are routed.
	Routing() model.RoutingMode
}

// SoCL adapts the core solver.
type SoCL struct{ Config core.Config }

// Name implements Algorithm.
func (SoCL) Name() string { return "SoCL" }

// Routing implements Algorithm: SoCL optimizes routing.
func (SoCL) Routing() model.RoutingMode { return model.RouteModeOptimal }

// Place implements Algorithm.
func (a SoCL) Place(in *model.Instance) (model.Placement, error) {
	sol, err := core.Solve(in, a.Config)
	if err != nil {
		return model.Placement{}, err
	}
	return sol.Placement, nil
}

// RP adapts the random-provisioning baseline.
type RP struct{ Seed int64 }

// Name implements Algorithm.
func (RP) Name() string { return "RP" }

// Routing implements Algorithm: RP routes requests randomly.
func (RP) Routing() model.RoutingMode { return model.RouteModeRandom }

// Place implements Algorithm.
func (a RP) Place(in *model.Instance) (model.Placement, error) {
	return baselines.RP(in, a.Seed), nil
}

// JDR adapts the joint-deployment-and-routing baseline.
type JDR struct{}

// Name implements Algorithm.
func (JDR) Name() string { return "JDR" }

// Routing implements Algorithm: JDR routes greedily to the nearest
// instance, ignoring chain dependencies (the paper's critique).
func (JDR) Routing() model.RoutingMode { return model.RouteModeGreedy }

// Place implements Algorithm.
func (JDR) Place(in *model.Instance) (model.Placement, error) {
	return baselines.JDR(in), nil
}

// GCOG adapts the greedy-combine baseline.
type GCOG struct{}

// Name implements Algorithm.
func (GCOG) Name() string { return "GC-OG" }

// Routing implements Algorithm: GC-OG's gradient uses the exact evaluator.
func (GCOG) Routing() model.RoutingMode { return model.RouteModeOptimal }

// Place implements Algorithm.
func (GCOG) Place(in *model.Instance) (model.Placement, error) {
	return baselines.GCOG(in).Placement, nil
}

// Config parameterizes a simulation run.
type Config struct {
	Graph   *topology.Graph
	Catalog *msvc.Catalog

	NumUsers         int
	SlotMinutes      float64 // re-planning interval (paper: 5 min)
	DurationMinutes  float64 // total simulated time (paper: 4 h = 240)
	MeanInterarrival float64 // mean minutes between a user's requests
	MoveProb         float64 // per-slot probability a user hops to a neighbor

	Lambda float64
	Budget float64

	Workload msvc.WorkloadConfig // data-volume ranges; NumUsers is ignored

	Seed int64
}

// DefaultConfig mirrors the paper's 4-hour trace experiment. The testbed
// workload is user-facing: most data moves on the ingress/egress legs
// (user uploads and result downloads), with lighter inter-service state —
// so proximity to users, not instance co-location, decides latency, which
// is the regime the testbed figures (9, 10) probe.
func DefaultConfig(g *topology.Graph, cat *msvc.Catalog, users int, seed int64) Config {
	w := msvc.DefaultWorkloadConfig(0)
	w.DeadlineSlack = 0 // the trace experiment records latency, not SLOs
	w.EdgeDataMin, w.EdgeDataMax = 1, 15
	w.InDataMin, w.InDataMax = 5, 25
	w.OutDataMin, w.OutDataMax = 5, 25
	// λ = 0.05 makes the testbed latency-dominant: the paper's testbed
	// tracks user-perceived delay (its λ is unreported), and SoCL's storage
	// planning is explicitly designed to keep "more warm instances in the
	// nearby area" — which only manifests when latency outweighs the
	// per-instance deployment cost in the per-slot objective.
	return Config{
		Graph: g, Catalog: cat,
		NumUsers: users, SlotMinutes: 5, DurationMinutes: 240,
		MeanInterarrival: 5, MoveProb: 0.3,
		Lambda: 0.05, Budget: 8000,
		Workload: w,
		Seed:     seed,
	}
}

// SlotRecord is the measurement of one time slot.
type SlotRecord struct {
	Slot        int
	TimeMinutes float64
	Requests    int
	AvgDelay    float64 // mean per-request completion time (s)
	MaxDelay    float64
	Cost        float64
	Objective   float64
	PlaceTime   time.Duration // algorithm decision time
	Failed      int           // requests with no reachable instance
}

// Result aggregates a full simulation run.
type Result struct {
	Algorithm string
	Slots     []SlotRecord
	// AllDelays collects every per-request latency for distribution plots.
	AllDelays []float64
}

// MeanDelay returns the average of all per-request delays.
func (r *Result) MeanDelay() float64 { return stats.Mean(r.AllDelays) }

// MaxDelay returns the maximum recorded delay (the paper's stability
// metric), or 0 for an empty run.
func (r *Result) MaxDelay() float64 {
	if len(r.AllDelays) == 0 {
		return 0
	}
	return stats.Max(r.AllDelays)
}

// MedianDelay returns the median per-request delay, or 0 for an empty run.
func (r *Result) MedianDelay() float64 {
	if len(r.AllDelays) == 0 {
		return 0
	}
	return stats.Median(r.AllDelays)
}

// TotalCost sums per-slot deployment costs.
func (r *Result) TotalCost() float64 {
	s := 0.0
	for _, rec := range r.Slots {
		s += rec.Cost
	}
	return s
}

// Run simulates algo over the configured horizon.
func Run(cfg Config, algo Algorithm) (*Result, error) {
	if cfg.Graph == nil || cfg.Catalog == nil {
		return nil, fmt.Errorf("sim: nil graph or catalog")
	}
	if cfg.NumUsers <= 0 || cfg.SlotMinutes <= 0 || cfg.DurationMinutes <= 0 {
		return nil, fmt.Errorf("sim: non-positive sizing (users=%d slot=%v dur=%v)",
			cfg.NumUsers, cfg.SlotMinutes, cfg.DurationMinutes)
	}
	if cfg.MeanInterarrival <= 0 {
		cfg.MeanInterarrival = cfg.SlotMinutes
	}
	r := stats.NewRand(stats.SplitSeed(cfg.Seed, "sim/run"))
	flows := cfg.Catalog.Flows()
	if len(flows) == 0 {
		return nil, fmt.Errorf("sim: catalog has no flows")
	}

	// User state: current node.
	homes := make([]int, cfg.NumUsers)
	for u := range homes {
		homes[u] = r.Intn(cfg.Graph.N())
	}

	numSlots := int(cfg.DurationMinutes / cfg.SlotMinutes)
	res := &Result{Algorithm: algo.Name()}
	for slot := 0; slot < numSlots; slot++ {
		// Mobility: random-waypoint hop to a neighbor.
		for u := range homes {
			if r.Float64() < cfg.MoveProb {
				nb := cfg.Graph.Neighbors(homes[u])
				if len(nb) > 0 {
					homes[u] = nb[r.Intn(len(nb))]
				}
			}
		}

		// Request generation: Poisson count per user for this slot.
		reqs := makeSlotRequests(cfg, r, homes, flows)
		rec := SlotRecord{Slot: slot, TimeMinutes: float64(slot) * cfg.SlotMinutes, Requests: len(reqs)}
		if len(reqs) == 0 {
			res.Slots = append(res.Slots, rec)
			continue
		}
		in := &model.Instance{
			Graph:    cfg.Graph,
			Workload: &msvc.Workload{Catalog: cfg.Catalog, Requests: reqs},
			Lambda:   cfg.Lambda,
			Budget:   cfg.Budget,
		}

		t0 := time.Now()
		placement, err := algo.Place(in)
		rec.PlaceTime = time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("sim: %s failed at slot %d: %w", algo.Name(), slot, err)
		}

		ev := in.EvaluateRouted(placement, algo.Routing(), stats.SplitSeed(cfg.Seed, "sim/route")+int64(slot))
		rec.Cost = ev.Cost
		rec.Objective = ev.Objective
		rec.Failed = ev.MissingInstances
		maxd := 0.0
		sum, n := 0.0, 0
		for _, d := range ev.Latencies {
			if math.IsInf(d, 1) {
				continue
			}
			sum += d
			n++
			if d > maxd {
				maxd = d
			}
			res.AllDelays = append(res.AllDelays, d)
		}
		if n > 0 {
			rec.AvgDelay = sum / float64(n)
		}
		rec.MaxDelay = maxd
		res.Slots = append(res.Slots, rec)
	}
	return res, nil
}

// makeSlotRequests draws this slot's requests: per user a Poisson number of
// arrivals with mean SlotMinutes/MeanInterarrival, each with a stochastic
// dependency chain sampled from the catalog flows.
func makeSlotRequests(cfg Config, r interface {
	Float64() float64
	Intn(int) int
}, homes []int, flows [][]msvc.ServiceID) []msvc.Request {
	var reqs []msvc.Request
	mean := cfg.SlotMinutes / cfg.MeanInterarrival
	id := 0
	for u, home := range homes {
		n := poisson(r, mean)
		for i := 0; i < n; i++ {
			base := flows[r.Intn(len(flows))]
			chain := append([]msvc.ServiceID(nil), base...)
			if len(chain) > 1 && r.Float64() < cfg.Workload.TruncateProb {
				chain = chain[:len(chain)-1]
			}
			req := msvc.Request{
				ID:       id,
				Home:     home,
				Chain:    chain,
				DataIn:   uniform(r, cfg.Workload.InDataMin, cfg.Workload.InDataMax),
				DataOut:  uniform(r, cfg.Workload.OutDataMin, cfg.Workload.OutDataMax),
				Deadline: math.Inf(1),
			}
			req.EdgeData = make([]float64, len(chain)-1)
			for e := range req.EdgeData {
				req.EdgeData[e] = uniform(r, cfg.Workload.EdgeDataMin, cfg.Workload.EdgeDataMax)
			}
			reqs = append(reqs, req)
			id++
		}
		_ = u
	}
	return reqs
}

func uniform(r interface{ Float64() float64 }, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// poisson draws a Poisson variate by Knuth's method (small means only).
func poisson(r interface{ Float64() float64 }, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // safety for absurd means
		}
	}
}
