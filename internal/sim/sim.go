// Package sim is the testbed substitute for the paper's Kubernetes
// deployment (Section V-C): a time-slotted discrete-event simulator of a
// serverless edge cluster. Users move among edge nodes (random-waypoint over
// the topology), issue requests with stochastic dependency chains on a
// Poisson clock (mean ≈ 5 minutes), and at every slot the placement
// algorithm under test re-plans from the observed state — the paper's
// "one-shot decision-making". Per-request latencies are measured with the
// exact evaluator, so the algorithms are exercised through the identical
// decision path they would take against a real cluster.
package sim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/baselines"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/repair"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/topology"
)

// Algorithm is a placement-and-routing policy under test. Routing returns
// the request-routing mode the algorithm pairs with its placements — the
// paper's algorithms are joint provisioning+routing schemes, so RP routes
// randomly, JDR greedily, and SoCL with optimized (exact DP) routing.
type Algorithm interface {
	Name() string
	// Place computes a provisioning decision for the instance observed at
	// the current slot.
	Place(in *model.Instance) (model.Placement, error)
	// Routing selects how this algorithm's placements are routed.
	Routing() model.RoutingMode
}

// SoCL adapts the core solver.
type SoCL struct{ Config core.Config }

// Name implements Algorithm.
func (SoCL) Name() string { return "SoCL" }

// Routing implements Algorithm: SoCL optimizes routing.
func (SoCL) Routing() model.RoutingMode { return model.RouteModeOptimal }

// Place implements Algorithm.
func (a SoCL) Place(in *model.Instance) (model.Placement, error) {
	sol, err := core.Solve(in, a.Config)
	if err != nil {
		return model.Placement{}, err
	}
	return sol.Placement, nil
}

// RP adapts the random-provisioning baseline.
type RP struct{ Seed int64 }

// Name implements Algorithm.
func (RP) Name() string { return "RP" }

// Routing implements Algorithm: RP routes requests randomly.
func (RP) Routing() model.RoutingMode { return model.RouteModeRandom }

// Place implements Algorithm.
func (a RP) Place(in *model.Instance) (model.Placement, error) {
	return baselines.RP(in, a.Seed), nil
}

// JDR adapts the joint-deployment-and-routing baseline.
type JDR struct{}

// Name implements Algorithm.
func (JDR) Name() string { return "JDR" }

// Routing implements Algorithm: JDR routes greedily to the nearest
// instance, ignoring chain dependencies (the paper's critique).
func (JDR) Routing() model.RoutingMode { return model.RouteModeGreedy }

// Place implements Algorithm.
func (JDR) Place(in *model.Instance) (model.Placement, error) {
	return baselines.JDR(in), nil
}

// GCOG adapts the greedy-combine baseline.
type GCOG struct{}

// Name implements Algorithm.
func (GCOG) Name() string { return "GC-OG" }

// Routing implements Algorithm: GC-OG's gradient uses the exact evaluator.
func (GCOG) Routing() model.RoutingMode { return model.RouteModeOptimal }

// Place implements Algorithm.
func (GCOG) Place(in *model.Instance) (model.Placement, error) {
	return baselines.GCOG(in).Placement, nil
}

// Config parameterizes a simulation run.
type Config struct {
	Graph   *topology.Graph
	Catalog *msvc.Catalog

	NumUsers         int
	SlotMinutes      float64 // re-planning interval (paper: 5 min)
	DurationMinutes  float64 // total simulated time (paper: 4 h = 240)
	MeanInterarrival float64 // mean minutes between a user's requests
	MoveProb         float64 // per-slot probability a user hops to a neighbor

	Lambda float64
	Budget float64

	Workload msvc.WorkloadConfig // data-volume ranges; NumUsers is ignored

	Seed int64

	// Faults, when non-nil, injects the schedule's node/link/storage faults
	// into the run (see internal/chaos); nil preserves the no-fault path
	// byte for byte. The schedule must be generated over this Config's Graph.
	Faults *chaos.Schedule
	// Policy selects the response to fault damage (ignored without Faults).
	Policy FaultPolicy
	// Repair tunes PolicyRepair; its Mode and Seed are overridden per slot
	// to match the algorithm's routing. Naive/MaxAdds are honored.
	Repair repair.Config
	// Cloud, when non-nil, gives requests whose services are missing a WAN
	// fallback instead of going unserved (model.ErrNoInstance discipline).
	Cloud *model.CloudConfig
}

// DefaultConfig mirrors the paper's 4-hour trace experiment. The testbed
// workload is user-facing: most data moves on the ingress/egress legs
// (user uploads and result downloads), with lighter inter-service state —
// so proximity to users, not instance co-location, decides latency, which
// is the regime the testbed figures (9, 10) probe.
func DefaultConfig(g *topology.Graph, cat *msvc.Catalog, users int, seed int64) Config {
	w := msvc.DefaultWorkloadConfig(0)
	w.DeadlineSlack = 0 // the trace experiment records latency, not SLOs
	w.EdgeDataMin, w.EdgeDataMax = 1, 15
	w.InDataMin, w.InDataMax = 5, 25
	w.OutDataMin, w.OutDataMax = 5, 25
	// λ = 0.05 makes the testbed latency-dominant: the paper's testbed
	// tracks user-perceived delay (its λ is unreported), and SoCL's storage
	// planning is explicitly designed to keep "more warm instances in the
	// nearby area" — which only manifests when latency outweighs the
	// per-instance deployment cost in the per-slot objective.
	return Config{
		Graph: g, Catalog: cat,
		NumUsers: users, SlotMinutes: 5, DurationMinutes: 240,
		MeanInterarrival: 5, MoveProb: 0.3,
		Lambda: 0.05, Budget: 8000,
		Workload: w,
		Seed:     seed,
	}
}

// SlotRecord is the measurement of one time slot.
type SlotRecord struct {
	Slot        int
	TimeMinutes float64
	Requests    int
	AvgDelay    float64 // mean per-request completion time (s)
	MaxDelay    float64
	Cost        float64
	Objective   float64
	// ServedObjective is the Eq. 3/8 objective over the requests the slot
	// actually served: one unserved request drives Objective to +Inf, so
	// cross-policy comparisons under faults need the finite served part.
	// Equal to Objective (bitwise) whenever every request was served.
	ServedObjective float64
	PlaceTime       time.Duration // algorithm decision time

	// Missing counts requests with no deployed instance of some chain
	// service (model.ErrNoInstance, no cloud fallback); Unroutable counts
	// requests whose services were deployed but unreachable (+Inf completion
	// time). The old Failed counter conflated the two.
	Missing    int
	Unroutable int
	// CloudServed counts requests served by the WAN fallback; Degraded
	// counts edge-served requests slower than the slot's no-fault reference.
	CloudServed int
	Degraded    int

	// Fault telemetry (zero without Config.Faults).
	FaultEvents int           // chaos events applied this slot
	DownNodes   int           // nodes down after this slot's events
	Rehomed     int           // users moved off freshly-crashed nodes
	RepairTime  time.Duration // repair.Run or re-solve time, by policy
	RepairAdds  int           // instances re-provisioned (PolicyRepair)
	RepairEvict int           // instances evicted for Eq. 5/6 (PolicyRepair)
}

// Result aggregates a full simulation run.
type Result struct {
	Algorithm string
	Slots     []SlotRecord
	// AllDelays collects every per-request latency for distribution plots.
	AllDelays []float64
}

// MeanDelay returns the average of all per-request delays.
func (r *Result) MeanDelay() float64 { return stats.Mean(r.AllDelays) }

// MaxDelay returns the maximum recorded delay (the paper's stability
// metric), or 0 for an empty run.
func (r *Result) MaxDelay() float64 {
	if len(r.AllDelays) == 0 {
		return 0
	}
	return stats.Max(r.AllDelays)
}

// MedianDelay returns the median per-request delay, or 0 for an empty run.
func (r *Result) MedianDelay() float64 {
	if len(r.AllDelays) == 0 {
		return 0
	}
	return stats.Median(r.AllDelays)
}

// TotalCost sums per-slot deployment costs.
func (r *Result) TotalCost() float64 {
	s := 0.0
	for _, rec := range r.Slots {
		s += rec.Cost
	}
	return s
}

// Run simulates algo over the configured horizon. A mid-run algorithm or
// fault-replay failure returns the partial *Result covering every completed
// slot alongside the error, so callers can diagnose how far the run got.
func Run(cfg Config, algo Algorithm) (*Result, error) {
	if cfg.Graph == nil || cfg.Catalog == nil {
		return nil, fmt.Errorf("sim: nil graph or catalog")
	}
	if cfg.NumUsers <= 0 || cfg.SlotMinutes <= 0 || cfg.DurationMinutes <= 0 {
		return nil, fmt.Errorf("sim: non-positive sizing (users=%d slot=%v dur=%v)",
			cfg.NumUsers, cfg.SlotMinutes, cfg.DurationMinutes)
	}
	if cfg.MeanInterarrival <= 0 {
		cfg.MeanInterarrival = cfg.SlotMinutes
	}
	r := stats.NewRand(stats.SplitSeed(cfg.Seed, "sim/run"))
	flows := cfg.Catalog.Flows()
	if len(flows) == 0 {
		return nil, fmt.Errorf("sim: catalog has no flows")
	}
	var mask *chaos.Mask
	if cfg.Faults != nil {
		mask = chaos.NewMask(cfg.Graph)
	}

	// User state: current node.
	homes := make([]int, cfg.NumUsers)
	for u := range homes {
		homes[u] = r.Intn(cfg.Graph.N())
	}

	numSlots := int(cfg.DurationMinutes / cfg.SlotMinutes)
	res := &Result{Algorithm: algo.Name()}
	for slot := 0; slot < numSlots; slot++ {
		// Mobility: random-waypoint hop to a neighbor (never onto a node the
		// user can observe to be down).
		for u := range homes {
			if r.Float64() < cfg.MoveProb {
				nb := cfg.Graph.Neighbors(homes[u])
				if len(nb) > 0 {
					hop := nb[r.Intn(len(nb))]
					if mask == nil || mask.NodeUp(hop) {
						homes[u] = hop
					}
				}
			}
		}

		// Request generation: Poisson count per user for this slot.
		reqs := makeSlotRequests(cfg, r, homes, flows)
		rec := SlotRecord{Slot: slot, TimeMinutes: float64(slot) * cfg.SlotMinutes, Requests: len(reqs)}
		if len(reqs) == 0 {
			// Still advance the fault timeline so the mask stays aligned
			// with the schedule's slots.
			if mask != nil {
				if err := applySlotFaults(mask, cfg.Faults, slot, &rec); err != nil {
					return res, err
				}
			}
			res.Slots = append(res.Slots, rec)
			continue
		}
		// The algorithm plans on the substrate as currently known: the base
		// graph, or the mask state left by previous slots — this slot's
		// faults have not struck yet.
		planGraph := cfg.Graph
		if mask != nil {
			planGraph = mask.Graph()
		}
		in := &model.Instance{
			Graph:    planGraph,
			Workload: &msvc.Workload{Catalog: cfg.Catalog, Requests: reqs},
			Lambda:   cfg.Lambda,
			Budget:   cfg.Budget,
			Cloud:    cfg.Cloud,
		}

		t0 := time.Now()
		placement, err := algo.Place(in)
		rec.PlaceTime = time.Since(t0)
		if err != nil {
			return res, fmt.Errorf("sim: %s failed at slot %d: %w", algo.Name(), slot, err)
		}

		var ev *model.Evaluation
		if mask == nil {
			ev = in.EvaluateRouted(placement, algo.Routing(), routeSeed(cfg, slot))
		} else {
			ev, err = serveFaultySlot(cfg, algo, mask, slot, homes, reqs, placement, &rec)
			if err != nil {
				return res, fmt.Errorf("sim: slot %d: %w", slot, err)
			}
		}
		rec.Cost = ev.Cost
		rec.Objective = ev.Objective
		rec.Missing = ev.MissingInstances
		rec.Unroutable = ev.Unroutable
		rec.CloudServed = ev.CloudServed
		maxd := 0.0
		sum, n := 0.0, 0
		for _, d := range ev.Latencies {
			if math.IsInf(d, 1) {
				continue
			}
			sum += d
			n++
			if d > maxd {
				maxd = d
			}
			res.AllDelays = append(res.AllDelays, d)
		}
		if n > 0 {
			rec.AvgDelay = sum / float64(n)
		}
		rec.MaxDelay = maxd
		rec.ServedObjective = in.Objective(ev.Cost, sum)
		res.Slots = append(res.Slots, rec)
	}
	return res, nil
}

// applySlotFaults folds one slot's schedule events into the mask and records
// the fault telemetry.
func applySlotFaults(mask *chaos.Mask, sched *chaos.Schedule, slot int, rec *SlotRecord) error {
	evs := sched.At(slot)
	for _, e := range evs {
		if err := mask.Apply(e); err != nil {
			return fmt.Errorf("sim: applying fault %v: %w", e, err)
		}
	}
	rec.FaultEvents = len(evs)
	rec.DownNodes = len(mask.DownNodes())
	return nil
}

// serveFaultySlot runs steps 2–5 of the faulty-slot timeline (see faults.go):
// strike this slot's faults, re-home displaced users, apply the fault
// policy to the stale plan, and evaluate what actually serves on the masked
// substrate.
func serveFaultySlot(cfg Config, algo Algorithm, mask *chaos.Mask, slot int,
	homes []int, reqs []msvc.Request, placement model.Placement, rec *SlotRecord) (*model.Evaluation, error) {
	if err := applySlotFaults(mask, cfg.Faults, slot, rec); err != nil {
		return nil, err
	}
	rec.Rehomed = rehomeUsers(mask, cfg.Graph, homes, reqs)
	// evalIn lives on the base graph — repair and the mask derive the masked
	// views themselves — with the re-homed requests.
	evalIn := &model.Instance{
		Graph:    cfg.Graph,
		Workload: &msvc.Workload{Catalog: cfg.Catalog, Requests: reqs},
		Lambda:   cfg.Lambda,
		Budget:   cfg.Budget,
		Cloud:    cfg.Cloud,
	}
	seed := routeSeed(cfg, slot)

	// Dispatch through the shared policy layer (internal/serve): the daemon's
	// event loop builds the same EpochContext, so the two paths cannot drift.
	ctx := &serve.EpochContext{
		In:          evalIn,
		Mask:        mask,
		Planned:     placement,
		Mode:        algo.Routing(),
		Seed:        seed,
		Repair:      cfg.Repair,
		Resolve:     algo.Place,
		PlannerName: algo.Name(),
	}
	out, err := policyFor(cfg.Policy, algo).Serve(ctx)
	if err != nil {
		return nil, err
	}
	rec.RepairTime = out.ReactTime
	rec.RepairAdds = len(out.Added)
	rec.RepairEvict = len(out.Evicted)
	ev := out.Eval

	// Degraded: edge-served requests slower than the no-fault reference —
	// the planned placement on the pristine substrate with the same homes.
	if !mask.Pristine() {
		rec.Degraded = serve.CountDegraded(evalIn, placement, ev, algo.Routing(), seed)
	}
	return ev, nil
}

// repairDriver lets an algorithm perform PolicyRepair's incremental round
// itself, so stateful solvers can fold the repaired placement into their
// warm state (core.OnlineSolver.Repair).
type repairDriver interface {
	RepairWith(in *model.Instance, m *chaos.Mask, p model.Placement, cfg repair.Config) (*repair.Result, error)
}

// makeSlotRequests draws this slot's requests: per user a Poisson number of
// arrivals with mean SlotMinutes/MeanInterarrival, each with a stochastic
// dependency chain sampled from the catalog flows.
func makeSlotRequests(cfg Config, r interface {
	Float64() float64
	Intn(int) int
}, homes []int, flows [][]msvc.ServiceID) []msvc.Request {
	var reqs []msvc.Request
	mean := cfg.SlotMinutes / cfg.MeanInterarrival
	id := 0
	for u, home := range homes {
		n := poisson(r, mean)
		for i := 0; i < n; i++ {
			base := flows[r.Intn(len(flows))]
			chain := append([]msvc.ServiceID(nil), base...)
			if len(chain) > 1 && r.Float64() < cfg.Workload.TruncateProb {
				chain = chain[:len(chain)-1]
			}
			req := msvc.Request{
				ID:       id,
				Home:     home,
				Chain:    chain,
				DataIn:   uniform(r, cfg.Workload.InDataMin, cfg.Workload.InDataMax),
				DataOut:  uniform(r, cfg.Workload.OutDataMin, cfg.Workload.OutDataMax),
				Deadline: math.Inf(1),
			}
			req.EdgeData = make([]float64, len(chain)-1)
			for e := range req.EdgeData {
				req.EdgeData[e] = uniform(r, cfg.Workload.EdgeDataMin, cfg.Workload.EdgeDataMax)
			}
			reqs = append(reqs, req)
			id++
		}
		_ = u
	}
	return reqs
}

func uniform(r interface{ Float64() float64 }, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// poisson draws a Poisson variate by Knuth's method (small means only).
func poisson(r interface{ Float64() float64 }, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // safety for absurd means
		}
	}
}
