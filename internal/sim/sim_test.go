package sim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/msvc"
	"repro/internal/stats"
	"repro/internal/topology"
)

func testSetup(nodes int, seed int64) (*topology.Graph, *msvc.Catalog) {
	g := topology.RandomGeometric(nodes, 0.4, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	return g, cat
}

func shortConfig(g *topology.Graph, cat *msvc.Catalog, users int, seed int64) Config {
	cfg := DefaultConfig(g, cat, users, seed)
	cfg.DurationMinutes = 30 // 6 slots
	return cfg
}

func TestRunSoCLBasics(t *testing.T) {
	g, cat := testSetup(8, 1)
	cfg := shortConfig(g, cat, 10, 1)
	res, err := Run(cfg, SoCL{Config: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != "SoCL" {
		t.Fatalf("name = %s", res.Algorithm)
	}
	if len(res.Slots) != 6 {
		t.Fatalf("slots = %d, want 6", len(res.Slots))
	}
	totalReqs := 0
	for _, rec := range res.Slots {
		totalReqs += rec.Requests
		if rec.Unserved() != 0 {
			t.Fatalf("slot %d had %d missing + %d unroutable requests", rec.Slot, rec.Missing, rec.Unroutable)
		}
		if rec.Requests > 0 && rec.Cost <= 0 {
			t.Fatalf("slot %d with requests has zero cost", rec.Slot)
		}
	}
	if totalReqs == 0 {
		t.Fatal("no requests generated over the horizon")
	}
	if len(res.AllDelays) == 0 || res.MeanDelay() <= 0 {
		t.Fatal("no delays recorded")
	}
	if res.MaxDelay() < res.MeanDelay() {
		t.Fatal("max < mean")
	}
	if res.MedianDelay() <= 0 {
		t.Fatal("median not positive")
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	g, cat := testSetup(8, 2)
	for _, algo := range []Algorithm{SoCL{Config: core.DefaultConfig()}, RP{Seed: 1}, JDR{}, GCOG{}} {
		cfg := shortConfig(g, cat, 8, 2)
		cfg.DurationMinutes = 15
		res, err := Run(cfg, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		for _, rec := range res.Slots {
			if rec.Requests > 0 && rec.Unserved() > 0 {
				t.Fatalf("%s: unserved requests", algo.Name())
			}
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	g, cat := testSetup(8, 3)
	r1, err := Run(shortConfig(g, cat, 10, 3), JDR{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(shortConfig(g, cat, 10, 3), JDR{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.AllDelays) != len(r2.AllDelays) {
		t.Fatal("same seed produced different runs")
	}
	for i := range r1.AllDelays {
		if r1.AllDelays[i] != r2.AllDelays[i] {
			t.Fatal("delay streams differ")
		}
	}
}

func TestRunErrors(t *testing.T) {
	g, cat := testSetup(6, 4)
	if _, err := Run(Config{}, JDR{}); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := shortConfig(g, cat, 0, 4)
	if _, err := Run(cfg, JDR{}); err == nil {
		t.Fatal("zero users accepted")
	}
	bad := shortConfig(g, msvc.NewCatalog(), 5, 4)
	if _, err := Run(bad, JDR{}); err == nil {
		t.Fatal("flowless catalog accepted")
	}
}

func TestMobilityMovesUsers(t *testing.T) {
	g, cat := testSetup(10, 5)
	cfg := shortConfig(g, cat, 20, 5)
	cfg.MoveProb = 1.0
	res, err := Run(cfg, JDR{})
	if err != nil {
		t.Fatal(err)
	}
	// Just confirm the run completed with requests from multiple homes:
	// indirectly, delays should vary.
	if len(res.AllDelays) > 4 && stats.Stddev(res.AllDelays) == 0 {
		t.Fatal("zero delay variance under full mobility")
	}
}

func TestPoissonMeanRoughlyCorrect(t *testing.T) {
	r := stats.NewRand(9)
	n, trials := 0, 4000
	for i := 0; i < trials; i++ {
		n += poisson(r, 2.0)
	}
	mean := float64(n) / float64(trials)
	if math.Abs(mean-2.0) > 0.15 {
		t.Fatalf("poisson mean = %v, want ≈ 2", mean)
	}
	if poisson(r, 0) != 0 {
		t.Fatal("poisson(0) should be 0")
	}
}

func TestUniformDegenerate(t *testing.T) {
	r := stats.NewRand(1)
	if got := uniform(r, 5, 5); got != 5 {
		t.Fatalf("uniform degenerate = %v", got)
	}
	if got := uniform(r, 5, 3); got != 5 {
		t.Fatalf("uniform inverted = %v", got)
	}
}

func TestSoCLBeatsRPOnObjectiveOverTrace(t *testing.T) {
	g, cat := testSetup(10, 7)
	cfgA := shortConfig(g, cat, 15, 7)
	cfgB := shortConfig(g, cat, 15, 7)
	socl, err := Run(cfgA, SoCL{Config: core.DefaultConfig()})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Run(cfgB, RP{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	objSoCL, objRP := 0.0, 0.0
	for _, s := range socl.Slots {
		objSoCL += s.Objective
	}
	for _, s := range rp.Slots {
		objRP += s.Objective
	}
	if objSoCL > objRP {
		t.Fatalf("SoCL objective %v worse than RP %v over trace", objSoCL, objRP)
	}
}
