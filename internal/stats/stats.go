// Package stats provides small, dependency-free numeric helpers shared by the
// SoCL library: summary statistics, histograms, and deterministic RNG
// derivation so that every experiment is reproducible bit-for-bit from a
// single root seed.
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// NewRand returns a deterministic *rand.Rand seeded with seed.
//
// The library never uses the global rand source; all randomness is derived
// from explicit seeds so experiments replay exactly.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SplitSeed derives a child seed from a parent seed and a stream label.
// Distinct labels yield (with overwhelming probability) independent streams,
// which lets one root seed drive many components without correlation.
func SplitSeed(seed int64, label string) int64 {
	// FNV-1a over the label, mixed with the parent seed via splitmix64-style
	// finalization. Plain integer math keeps this allocation-free.
	h := uint64(1469598103934665603)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	z := uint64(seed) + h + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the population variance of xs (0 for fewer than 2 values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs (interpolated for even length).
// It panics on empty input.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Histogram counts xs into nbins equal-width bins spanning [min, max].
// Values exactly at max fall into the last bin. It returns the bin counts and
// the bin width. Empty input or nbins < 1 yields a nil slice.
func Histogram(xs []float64, nbins int, min, max float64) ([]int, float64) {
	if len(xs) == 0 || nbins < 1 || max <= min {
		return nil, 0
	}
	width := (max - min) / float64(nbins)
	bins := make([]int, nbins)
	for _, x := range xs {
		if x < min || x > max {
			continue
		}
		i := int((x - min) / width)
		if i >= nbins {
			i = nbins - 1
		}
		bins[i]++
	}
	return bins, width
}

// CosineSimilarity returns the cosine similarity of two equal-length vectors,
// or 0 if either vector is all-zero or lengths differ.
func CosineSimilarity(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	//socllint:ignore floateq exact zero norm means an all-zero vector; any nonzero component makes it positive
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// JaccardSimilarity returns |a∩b| / |a∪b| for two sets of ints, and 1 when
// both sets are empty.
func JaccardSimilarity(a, b map[int]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Shuffle permutes xs in place using r.
func Shuffle[T any](r *rand.Rand, xs []T) {
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// UniformIn returns a value uniformly distributed in [lo, hi).
func UniformIn(r *rand.Rand, lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}
