package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanSumEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", Mean(nil))
	}
	if Sum(nil) != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", Sum(nil))
	}
}

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); !almostEq(got, 2.5) {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 {
		t.Fatalf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Fatalf("Max = %v", Max(xs))
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := Stddev(xs); !almostEq(got, 2) {
		t.Fatalf("Stddev = %v, want 2", got)
	}
	if Variance([]float64{1}) != 0 {
		t.Fatal("Variance of singleton should be 0")
	}
}

func TestMedianPercentile(t *testing.T) {
	if got := Median([]float64{1, 3, 2}); !almostEq(got, 2) {
		t.Fatalf("Median odd = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); !almostEq(got, 2.5) {
		t.Fatalf("Median even = %v", got)
	}
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 25); !almostEq(got, 20) {
		t.Fatalf("P25 = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestHistogram(t *testing.T) {
	bins, width := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 2, 0, 2)
	if width != 1 {
		t.Fatalf("width = %v", width)
	}
	if bins[0] != 2 || bins[1] != 3 {
		t.Fatalf("bins = %v, want [2 3]", bins)
	}
	if b, _ := Histogram(nil, 3, 0, 1); b != nil {
		t.Fatal("empty input should give nil bins")
	}
	if b, _ := Histogram([]float64{1}, 0, 0, 1); b != nil {
		t.Fatal("nbins<1 should give nil bins")
	}
}

func TestHistogramOutOfRangeIgnored(t *testing.T) {
	bins, _ := Histogram([]float64{-1, 0.5, 9}, 1, 0, 1)
	if bins[0] != 1 {
		t.Fatalf("bins = %v, want [1]", bins)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity([]float64{1, 0}, []float64{1, 0}); !almostEq(got, 1) {
		t.Fatalf("identical = %v", got)
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); !almostEq(got, 0) {
		t.Fatalf("orthogonal = %v", got)
	}
	if got := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero vector = %v", got)
	}
	if got := CosineSimilarity([]float64{1}, []float64{1, 2}); got != 0 {
		t.Fatalf("length mismatch = %v", got)
	}
}

func TestJaccard(t *testing.T) {
	a := map[int]bool{1: true, 2: true}
	b := map[int]bool{2: true, 3: true}
	if got := JaccardSimilarity(a, b); !almostEq(got, 1.0/3.0) {
		t.Fatalf("jaccard = %v", got)
	}
	if got := JaccardSimilarity(nil, nil); got != 1 {
		t.Fatalf("empty sets = %v", got)
	}
}

func TestSplitSeedDistinct(t *testing.T) {
	a := SplitSeed(42, "topology")
	b := SplitSeed(42, "workload")
	c := SplitSeed(43, "topology")
	if a == b || a == c {
		t.Fatalf("seeds collide: %d %d %d", a, b, c)
	}
	if a != SplitSeed(42, "topology") {
		t.Fatal("SplitSeed not deterministic")
	}
}

func TestNewRandDeterministic(t *testing.T) {
	r1, r2 := NewRand(7), NewRand(7)
	for i := 0; i < 10; i++ {
		if r1.Int63() != r2.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestUniformInRange(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		v := UniformIn(r, 2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("UniformIn out of range: %v", v)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRand(3)
	xs := []int{1, 2, 3, 4, 5}
	Shuffle(r, xs)
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	for i := 1; i <= 5; i++ {
		if !seen[i] {
			t.Fatalf("element %d lost in shuffle: %v", i, xs)
		}
	}
}

// Property: cosine similarity is always within [-1, 1] (up to fp error) and
// symmetric.
func TestCosineSimilarityProperties(t *testing.T) {
	f := func(a, b []float64) bool {
		if len(a) > len(b) {
			a = a[:len(b)]
		} else {
			b = b[:len(a)]
		}
		// Bound magnitudes to avoid float64 overflow in the dot product,
		// which is outside the function's contract.
		for i := range a {
			a[i] = math.Remainder(a[i], 1e6)
			b[i] = math.Remainder(b[i], 1e6)
		}
		s1 := CosineSimilarity(a, b)
		s2 := CosineSimilarity(b, a)
		if math.IsNaN(s1) || math.IsInf(s1, 0) {
			return false
		}
		return almostEq(s1, s2) && s1 <= 1+1e-9 && s1 >= -1-1e-9
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, v2 := Percentile(xs, p1), Percentile(xs, p2)
		return v1 <= v2+1e-9 && v1 >= Min(xs)-1e-9 && v2 <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram bin counts sum to the number of in-range samples.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 10))
			}
		}
		bins, _ := Histogram(xs, 5, -10, 10)
		if len(xs) == 0 {
			return bins == nil
		}
		total := 0
		for _, b := range bins {
			total += b
		}
		return total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
