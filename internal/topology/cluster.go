package topology

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// This file adds the region/zone hierarchy used by the sharded combine path
// (internal/combine.RunSharded): a generator for clustered substrates whose
// regions are dense internally and sparsely interconnected, a ShardPlan that
// records which shard owns each node plus the boundary structure between
// shards, and an induced-subgraph extractor that lets each shard finalize
// (and pay the O(|V_s|²) path tables for) only its own slice of the network.
//
// None of these require the parent graph to be finalized: Clustered returns
// an unfinalized graph on purpose, because at 10⁴ nodes the global all-pairs
// tables cost ~3 GB and minutes of Dijkstra that the sharded pipeline never
// needs. Callers that want global queries (small differential tests) call
// Finalize themselves.

// ClusterConfig configures the Clustered generator.
type ClusterConfig struct {
	// Regions is the number of regions, laid out on a near-square grid.
	Regions int
	// NodesPerRegion is the node count of every region.
	NodesPerRegion int
	// Radius is the intra-region link radius in region-local units (a region
	// occupies a unit square of its own before grid scaling), mirroring
	// RandomGeometric's radius semantics within each region.
	Radius float64
	// InterLinks is the number of links between each pair of grid-adjacent
	// regions: the nearest cross-region node pair always links; the remainder
	// are seeded random pairs. Minimum 1.
	InterLinks int
	// InterRateFrac scales inter-region link rates below the intra-region
	// range, modelling thin backhaul between zones. (0,1]; 1 keeps rates in
	// the same range as intra-region links.
	InterRateFrac float64
	// Gen supplies the node-capacity and link-rate ranges.
	Gen GenConfig
}

// DefaultClusterConfig returns a clustered substrate with paper-ranged
// capacities, a dense intra-region radius, and thin dual-link backhaul.
func DefaultClusterConfig(regions, nodesPerRegion int) ClusterConfig {
	return ClusterConfig{
		Regions:        regions,
		NodesPerRegion: nodesPerRegion,
		Radius:         0.45,
		InterLinks:     2,
		InterRateFrac:  0.5,
		Gen:            DefaultGenConfig(),
	}
}

// Clustered generates an unfinalized clustered substrate: cfg.Regions regions
// on a near-square grid, each an internally connected random-geometric
// subgraph of cfg.NodesPerRegion nodes, with cfg.InterLinks backhaul links
// between every pair of grid-adjacent regions. Node IDs are contiguous per
// region (region r owns [r·n, (r+1)·n)), and the returned region slices are
// sorted ascending — ready to feed PlanShards.
//
// The graph is connected (each region is internally connected and the region
// grid is connected) but NOT finalized; see the file comment.
func Clustered(cfg ClusterConfig, seed int64) (*Graph, [][]NodeID) {
	if cfg.Regions < 1 {
		cfg.Regions = 1
	}
	if cfg.NodesPerRegion < 1 {
		cfg.NodesPerRegion = 1
	}
	if cfg.InterLinks < 1 {
		cfg.InterLinks = 1
	}
	if cfg.InterRateFrac <= 0 || cfg.InterRateFrac > 1 {
		cfg.InterRateFrac = 1
	}
	r := stats.NewRand(stats.SplitSeed(seed, "topology/clustered"))
	gridW := 1
	for gridW*gridW < cfg.Regions {
		gridW++
	}
	scale := 1 / float64(gridW)
	n := cfg.NodesPerRegion
	g := New(cfg.Regions * n)
	regions := make([][]NodeID, cfg.Regions)

	for reg := 0; reg < cfg.Regions; reg++ {
		cx, cy := float64(reg%gridW), float64(reg/gridW)
		ids := make([]NodeID, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, g.AddNode(
				(cx+r.Float64())*scale, (cy+r.Float64())*scale,
				stats.UniformIn(r, cfg.Gen.ComputeMin, cfg.Gen.ComputeMax),
				stats.UniformIn(r, cfg.Gen.StorageMin, cfg.Gen.StorageMax)))
		}
		regions[reg] = ids
		// Intra-region geometric links: the per-region O(n²) pair scan is the
		// whole point — a global scan would be O((R·n)²).
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if nodeDist(g.nodes[ids[i]], g.nodes[ids[j]]) <= cfg.Radius*scale {
					_ = g.AddLink(ids[i], ids[j], cfg.Gen.drawRate(r))
				}
			}
		}
		connectRegion(g, ids, cfg.Gen, r)
	}

	// Backhaul between grid-adjacent regions: nearest cross pair first, then
	// seeded random pairs. Rates are thinned by InterRateFrac.
	interRate := func() float64 { return cfg.Gen.drawRate(r) * cfg.InterRateFrac }
	for reg := 0; reg < cfg.Regions; reg++ {
		for _, nb := range []int{reg + 1, reg + gridW} {
			if nb >= cfg.Regions {
				continue
			}
			if nb == reg+1 && nb%gridW == 0 {
				continue // grid row wrap: not adjacent
			}
			a, b := regions[reg], regions[nb]
			bestA, bestB, bestD := a[0], b[0], math.Inf(1)
			for _, u := range a {
				for _, v := range b {
					if d := nodeDist(g.nodes[u], g.nodes[v]); d < bestD {
						bestA, bestB, bestD = u, v, d
					}
				}
			}
			_ = g.AddLink(bestA, bestB, interRate())
			for extra := 1; extra < cfg.InterLinks; extra++ {
				_ = g.AddLink(a[r.Intn(len(a))], b[r.Intn(len(b))], interRate())
			}
		}
	}
	return g, regions
}

// connectRegion links the local components of the region induced by ids
// (nearest pair across the first two local components, repeatedly) until the
// region is internally connected — connect()'s logic restricted to a node
// subset so it never scans the whole graph.
func connectRegion(g *Graph, ids []NodeID, cfg GenConfig, r interface{ Float64() float64 }) {
	local := make(map[NodeID]int, len(ids))
	for i, id := range ids {
		local[id] = i
	}
	for {
		comps := regionComponents(g, ids, local)
		if len(comps) <= 1 {
			return
		}
		bestA, bestB, bestD := NodeID(-1), NodeID(-1), math.Inf(1)
		for _, a := range comps[0] {
			for _, b := range comps[1] {
				if d := nodeDist(g.nodes[a], g.nodes[b]); d < bestD {
					bestA, bestB, bestD = a, b, d
				}
			}
		}
		_ = g.AddLink(bestA, bestB, cfg.drawRate(r))
	}
}

// regionComponents returns the connected components of the subgraph induced
// by ids, each sorted ascending, ordered by smallest member.
func regionComponents(g *Graph, ids []NodeID, local map[NodeID]int) [][]NodeID {
	seen := make([]bool, len(ids))
	var comps [][]NodeID
	for i, start := range ids {
		if seen[i] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{start}
		seen[i] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, e := range g.adj[u] {
				if li, ok := local[e.to]; ok && !seen[li] {
					seen[li] = true
					stack = append(stack, e.to)
				}
			}
		}
		sortIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

// ShardPlan assigns every node of a graph to exactly one shard and records
// the boundary structure the sharded combine needs: which owned nodes touch
// another shard (gateways), which shards are adjacent, and each shard's halo
// (the foreign nodes one link away). Users and service chains follow their
// home node's shard; the plan itself is purely topological.
type ShardPlan struct {
	// NumShards is the shard count.
	NumShards int
	// NodeShard[v] is the shard owning node v.
	NodeShard []int
	// Shards[s] is the sorted list of nodes owned by shard s.
	Shards [][]NodeID
	// Gateways[s] is the sorted subset of Shards[s] incident to at least one
	// inter-shard link: the only instances boundary reconciliation probes.
	Gateways [][]NodeID
	// Neighbors[s] is the sorted list of shards sharing a link with s.
	Neighbors [][]int
	// halos[s] is the sorted list of foreign nodes directly linked to shard s
	// (the neighbors' gateways facing s).
	halos [][]NodeID
}

// PlanShards builds a ShardPlan from a graph and a node partition (e.g. the
// region slices Clustered returns). Every node must appear in exactly one
// shard. The graph need not be finalized.
func PlanShards(g *Graph, shards [][]NodeID) (*ShardPlan, error) {
	V := g.N()
	p := &ShardPlan{
		NumShards: len(shards),
		NodeShard: make([]int, V),
		Shards:    make([][]NodeID, len(shards)),
	}
	for v := range p.NodeShard {
		p.NodeShard[v] = -1
	}
	for s, nodes := range shards {
		own := append([]NodeID(nil), nodes...)
		sort.Ints(own)
		for _, v := range own {
			if v < 0 || v >= V {
				return nil, fmt.Errorf("topology: shard %d node %d out of range [0,%d)", s, v, V)
			}
			if p.NodeShard[v] != -1 {
				return nil, fmt.Errorf("topology: node %d assigned to shards %d and %d", v, p.NodeShard[v], s)
			}
			p.NodeShard[v] = s
		}
		p.Shards[s] = own
	}
	for v, s := range p.NodeShard {
		if s == -1 {
			return nil, fmt.Errorf("topology: node %d assigned to no shard", v)
		}
	}

	// Boundary structure. Links() iterates a map, so membership is collected
	// into order-independent sets first and sorted lists are derived after —
	// the plan is a pure function of the graph, not of iteration order.
	S := len(shards)
	gateway := make([]bool, V)
	neighbor := make(map[[2]int]bool)
	haloOf := make([]map[NodeID]bool, S)
	for s := range haloOf {
		haloOf[s] = make(map[NodeID]bool)
	}
	for _, l := range g.Links() {
		sa, sb := p.NodeShard[l.A], p.NodeShard[l.B]
		if sa == sb {
			continue
		}
		gateway[l.A], gateway[l.B] = true, true
		neighbor[[2]int{sa, sb}] = true
		neighbor[[2]int{sb, sa}] = true
		haloOf[sa][l.B] = true
		haloOf[sb][l.A] = true
	}
	p.Gateways = make([][]NodeID, S)
	p.Neighbors = make([][]int, S)
	p.halos = make([][]NodeID, S)
	for s := 0; s < S; s++ {
		for _, v := range p.Shards[s] {
			if gateway[v] {
				p.Gateways[s] = append(p.Gateways[s], v)
			}
		}
		for t := 0; t < S; t++ {
			if t != s && neighbor[[2]int{s, t}] {
				p.Neighbors[s] = append(p.Neighbors[s], t)
			}
		}
		for v := range haloOf[s] {
			p.halos[s] = append(p.halos[s], v)
		}
		sort.Ints(p.halos[s])
	}
	return p, nil
}

// Halo returns the sorted foreign nodes directly linked to shard s: the
// one-link neighborhood boundary reconciliation scores removals against.
func (p *ShardPlan) Halo(s int) []NodeID { return p.halos[s] }

// Subgraph extracts the induced subgraph on the given nodes: node attributes
// are copied, and every link of g with both endpoints in the set is kept.
// Local IDs follow the order of the nodes argument (the k-th listed node
// becomes local ID k), which lets callers put owned nodes first and halo
// nodes after. Duplicate or out-of-range nodes panic.
//
// The parent may be unfinalized; the extract is returned unfinalized (it has
// only build-API state) and callers finalize it themselves — that per-shard
// Finalize over |V_s| nodes instead of |V| is the sharded path's core saving.
func Subgraph(g *Graph, nodes []NodeID) *Graph {
	local := make(map[NodeID]int, len(nodes))
	sub := New(len(nodes))
	for i, v := range nodes {
		if v < 0 || v >= g.N() {
			panic(fmt.Sprintf("topology: Subgraph node %d out of range [0,%d)", v, g.N()))
		}
		if _, dup := local[v]; dup {
			panic(fmt.Sprintf("topology: Subgraph node %d listed twice", v))
		}
		local[v] = i
		n := g.nodes[v]
		sub.AddNode(n.X, n.Y, n.Compute, n.Storage)
	}
	// Deterministic link order: walk the included nodes in local order and
	// their adjacency lists in insertion order; AddLink dedups the reverse
	// direction.
	for i, v := range nodes {
		for _, e := range g.adj[v] {
			if j, ok := local[e.to]; ok && i < j {
				_ = sub.AddLink(i, j, e.rate)
			}
		}
	}
	return sub
}
