package topology

import (
	"math"
	"testing"
)

func TestClusteredConnectedContiguousRegions(t *testing.T) {
	g, regions := Clustered(DefaultClusterConfig(6, 7), 11)
	if g.N() != 42 {
		t.Fatalf("N = %d, want 42", g.N())
	}
	if len(regions) != 6 {
		t.Fatalf("regions = %d, want 6", len(regions))
	}
	// Regions partition the ID space contiguously and in order.
	next := 0
	for r, ids := range regions {
		if len(ids) != 7 {
			t.Fatalf("region %d has %d nodes, want 7", r, len(ids))
		}
		for _, v := range ids {
			if v != next {
				t.Fatalf("region %d: node %d, want contiguous %d", r, v, next)
			}
			next++
		}
	}
	// Connected as a whole (Components works on the unfinalized build state).
	if comps := g.Components(); len(comps) != 1 {
		t.Fatalf("graph has %d components, want 1", len(comps))
	}
	// Each region internally connected.
	for r, ids := range regions {
		local := make(map[NodeID]int, len(ids))
		for i, id := range ids {
			local[id] = i
		}
		if comps := regionComponents(g, ids, local); len(comps) != 1 {
			t.Fatalf("region %d has %d internal components, want 1", r, len(comps))
		}
	}
}

func TestClusteredDeterministic(t *testing.T) {
	a, _ := Clustered(DefaultClusterConfig(4, 6), 3)
	b, _ := Clustered(DefaultClusterConfig(4, 6), 3)
	c, _ := Clustered(DefaultClusterConfig(4, 6), 4)
	la, lb := a.Links(), b.Links()
	if len(la) != len(lb) {
		t.Fatalf("same seed, different link counts: %d vs %d", len(la), len(lb))
	}
	for i := range a.Nodes() {
		na, nb := a.Node(i), b.Node(i)
		if na != nb {
			t.Fatalf("same seed, node %d differs: %+v vs %+v", i, na, nb)
		}
	}
	for _, l := range la {
		rb, ok := b.LinkRate(l.A, l.B)
		if !ok || rb != l.Rate {
			t.Fatalf("same seed, link (%d,%d) differs", l.A, l.B)
		}
	}
	if len(c.Links()) == len(la) {
		same := true
		for i := range a.Nodes() {
			if a.Node(i) != c.Node(i) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical substrates")
		}
	}
}

func TestPlanShardsErrors(t *testing.T) {
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(0, 0, 1, 1)
	}
	mustLink(t, g, 0, 1, 10)
	mustLink(t, g, 2, 3, 10)

	if _, err := PlanShards(g, [][]NodeID{{0, 1}, {2, 9}}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := PlanShards(g, [][]NodeID{{0, 1, 2}, {2, 3}}); err == nil {
		t.Fatal("duplicate assignment accepted")
	}
	if _, err := PlanShards(g, [][]NodeID{{0, 1}, {2}}); err == nil {
		t.Fatal("unassigned node accepted")
	}
}

func TestPlanShardsBoundaryStructure(t *testing.T) {
	// Path 0-1-2-3 split down the middle: 1 and 2 are the facing gateways.
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(0, 0, 1, 1)
	}
	mustLink(t, g, 0, 1, 10)
	mustLink(t, g, 1, 2, 10)
	mustLink(t, g, 2, 3, 10)
	p, err := PlanShards(g, [][]NodeID{{1, 0}, {3, 2}}) // unsorted input is fine
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards != 2 {
		t.Fatalf("NumShards = %d", p.NumShards)
	}
	wantIDs := func(got []NodeID, want ...NodeID) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	}
	wantIDs(p.Shards[0], 0, 1)
	wantIDs(p.Shards[1], 2, 3)
	wantIDs(p.Gateways[0], 1)
	wantIDs(p.Gateways[1], 2)
	wantIDs(p.Halo(0), 2)
	wantIDs(p.Halo(1), 1)
	if len(p.Neighbors[0]) != 1 || p.Neighbors[0][0] != 1 ||
		len(p.Neighbors[1]) != 1 || p.Neighbors[1][0] != 0 {
		t.Fatalf("neighbors = %v", p.Neighbors)
	}
	if p.NodeShard[0] != 0 || p.NodeShard[1] != 0 || p.NodeShard[2] != 1 || p.NodeShard[3] != 1 {
		t.Fatalf("NodeShard = %v", p.NodeShard)
	}
}

// Halo/gateway symmetry on a generated substrate: every halo node of shard s
// is a gateway of the shard owning it, and that shard lists s as a neighbor.
func TestPlanShardsSymmetryOnClustered(t *testing.T) {
	g, regions := Clustered(DefaultClusterConfig(6, 6), 5)
	p, err := PlanShards(g, regions)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < p.NumShards; s++ {
		for _, v := range p.Halo(s) {
			owner := p.NodeShard[v]
			if owner == s {
				t.Fatalf("shard %d halo contains own node %d", s, v)
			}
			if !containsID(p.Gateways[owner], v) {
				t.Fatalf("halo node %d of shard %d is not a gateway of shard %d", v, s, owner)
			}
			if !containsInt(p.Neighbors[s], owner) || !containsInt(p.Neighbors[owner], s) {
				t.Fatalf("shards %d and %d share node %d but are not mutual neighbors", s, owner, v)
			}
		}
	}
}

func TestSubgraphPreservesPathCosts(t *testing.T) {
	g, regions := Clustered(DefaultClusterConfig(4, 6), 9)
	// Full-set extraction in ID order is an exact copy: finalize both and
	// compare every pairwise path cost and hop count.
	all := make([]NodeID, g.N())
	for i := range all {
		all[i] = i
	}
	sub := Subgraph(g, all)
	g.Finalize()
	sub.Finalize()
	for a := 0; a < g.N(); a++ {
		for b := 0; b < g.N(); b++ {
			if ca, cb := g.PathCost(a, b), sub.PathCost(a, b); ca != cb {
				t.Fatalf("PathCost(%d,%d): parent %v, subgraph %v", a, b, ca, cb)
			}
			if ha, hb := g.Hops(a, b), sub.Hops(a, b); ha != hb {
				t.Fatalf("Hops(%d,%d): parent %d, subgraph %d", a, b, ha, hb)
			}
		}
	}
	// A single-region extract keeps intra-region costs no better than the
	// parent's (the parent may shortcut through other regions).
	reg := Subgraph(g, regions[0])
	reg.Finalize()
	for i := range regions[0] {
		for j := range regions[0] {
			pc, rc := g.PathCost(regions[0][i], regions[0][j]), reg.PathCost(i, j)
			if math.IsInf(rc, 1) {
				t.Fatalf("region extract disconnected at (%d,%d)", i, j)
			}
			if rc < pc-1e-12 {
				t.Fatalf("extract cost %v beats parent %v at (%d,%d)", rc, pc, i, j)
			}
		}
	}
}

func TestSubgraphPanics(t *testing.T) {
	g := New(3)
	for i := 0; i < 3; i++ {
		g.AddNode(0, 0, 1, 1)
	}
	mustPanic(t, "duplicate node", func() { Subgraph(g, []NodeID{0, 1, 1}) })
	mustPanic(t, "out-of-range node", func() { Subgraph(g, []NodeID{0, 5}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func containsID(xs []NodeID, v NodeID) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
