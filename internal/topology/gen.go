package topology

import (
	"math"

	"repro/internal/stats"
)

// GenConfig holds the parameter ranges used by all topology generators.
// The defaults (DefaultGenConfig) follow the paper's evaluation setup:
// edge servers with [5,20] GFLOP/s compute, [4,8] storage units, and
// [20,80] GB/s effective link bandwidth.
type GenConfig struct {
	ComputeMin, ComputeMax float64 // c(v_k) range, GFLOP/s
	StorageMin, StorageMax float64 // Φ(v_k) range, storage units
	RateMin, RateMax       float64 // effective b(l) range, GB/s
	// Shannon parameters: effective rate targets are realized as
	// B = target / log2(1+SNR) with SNR drawn from [SNRMin, SNRMax], so the
	// generated links honour b = B·log2(1+γg/N) while matching the target
	// range above.
	SNRMin, SNRMax float64
}

// DefaultGenConfig returns the paper's parameter ranges.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		ComputeMin: 5, ComputeMax: 20,
		StorageMin: 4, StorageMax: 8,
		RateMin: 20, RateMax: 80,
		SNRMin: 1, SNRMax: 63,
	}
}

func (c GenConfig) drawRate(r interface{ Float64() float64 }) float64 {
	target := c.RateMin + r.Float64()*(c.RateMax-c.RateMin)
	snr := c.SNRMin + r.Float64()*(c.SNRMax-c.SNRMin)
	nominal := target / math.Log2(1+snr)
	return ShannonRate(nominal, 1, snr, 1)
}

// RandomGeometric generates a connected random geometric graph of n edge
// servers placed uniformly in a unit square, linking nodes closer than
// radius. If the radius graph is disconnected, the nearest pair between
// components is linked until connected, so the result is always connected.
func RandomGeometric(n int, radius float64, cfg GenConfig, seed int64) *Graph {
	r := stats.NewRand(seed)
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddNode(r.Float64(), r.Float64(),
			stats.UniformIn(r, cfg.ComputeMin, cfg.ComputeMax),
			stats.UniformIn(r, cfg.StorageMin, cfg.StorageMax))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if nodeDist(g.nodes[i], g.nodes[j]) <= radius {
				// Error is impossible: i!=j, indices valid, rate positive.
				_ = g.AddLink(i, j, cfg.drawRate(r))
			}
		}
	}
	connect(g, cfg, r)
	g.Finalize()
	return g
}

// RingHubs generates a ring of n nodes with h additional hub nodes, each hub
// linked to a random subset of ring nodes. Hubs have above-range compute.
// This topology produces the high-degree interior nodes that Algorithm 1's
// candidate election (Theorem 1: ℋ > 2) targets.
func RingHubs(n, h int, cfg GenConfig, seed int64) *Graph {
	r := stats.NewRand(seed)
	g := New(n + h)
	for i := 0; i < n; i++ {
		angle := 2 * math.Pi * float64(i) / float64(n)
		g.AddNode(0.5+0.45*math.Cos(angle), 0.5+0.45*math.Sin(angle),
			stats.UniformIn(r, cfg.ComputeMin, cfg.ComputeMax),
			stats.UniformIn(r, cfg.StorageMin, cfg.StorageMax))
	}
	for i := 0; i < n; i++ {
		_ = g.AddLink(i, (i+1)%n, cfg.drawRate(r))
	}
	for j := 0; j < h; j++ {
		hub := g.AddNode(0.5, 0.5,
			cfg.ComputeMax, // hubs are the beefy servers
			stats.UniformIn(r, cfg.StorageMin, cfg.StorageMax))
		// Attach each hub to between 3 and n/2+3 ring nodes so hubs always
		// satisfy the ℋ > 2 candidate-degree requirement.
		k := 3 + r.Intn(n/2+1)
		perm := r.Perm(n)
		for _, v := range perm[:k] {
			_ = g.AddLink(hub, v, cfg.drawRate(r))
		}
	}
	g.Finalize()
	return g
}

// Grid generates a rows×cols lattice (4-neighbour) topology.
func Grid(rows, cols int, cfg GenConfig, seed int64) *Graph {
	r := stats.NewRand(seed)
	g := New(rows * cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			g.AddNode(float64(j)/float64(cols), float64(i)/float64(rows),
				stats.UniformIn(r, cfg.ComputeMin, cfg.ComputeMax),
				stats.UniformIn(r, cfg.StorageMin, cfg.StorageMax))
		}
	}
	id := func(i, j int) NodeID { return i*cols + j }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				_ = g.AddLink(id(i, j), id(i, j+1), cfg.drawRate(r))
			}
			if i+1 < rows {
				_ = g.AddLink(id(i, j), id(i+1, j), cfg.drawRate(r))
			}
		}
	}
	g.Finalize()
	return g
}

// Stadium generates the paper's "National Stadium" scenario: base stations
// arranged in two concentric rings around a venue plus a few backbone hubs,
// with denser links on the inner ring (crowd-facing cells) and radial links
// outward. n is the total number of stations (minimum 6).
func Stadium(n int, cfg GenConfig, seed int64) *Graph {
	if n < 6 {
		n = 6
	}
	r := stats.NewRand(seed)
	inner := n / 2
	outer := n - inner
	g := New(n)
	for i := 0; i < inner; i++ {
		angle := 2 * math.Pi * float64(i) / float64(inner)
		g.AddNode(0.5+0.2*math.Cos(angle), 0.5+0.2*math.Sin(angle),
			stats.UniformIn(r, cfg.ComputeMin, cfg.ComputeMax),
			stats.UniformIn(r, cfg.StorageMin, cfg.StorageMax))
	}
	for i := 0; i < outer; i++ {
		angle := 2 * math.Pi * float64(i) / float64(outer)
		g.AddNode(0.5+0.45*math.Cos(angle), 0.5+0.45*math.Sin(angle),
			stats.UniformIn(r, cfg.ComputeMin, cfg.ComputeMax),
			stats.UniformIn(r, cfg.StorageMin, cfg.StorageMax))
	}
	// Inner ring: fully chained plus chords.
	for i := 0; i < inner; i++ {
		_ = g.AddLink(i, (i+1)%inner, cfg.drawRate(r))
		if inner > 4 {
			_ = g.AddLink(i, (i+2)%inner, cfg.drawRate(r))
		}
	}
	// Outer ring chained.
	for i := 0; i < outer; i++ {
		_ = g.AddLink(inner+i, inner+(i+1)%outer, cfg.drawRate(r))
	}
	// Radial links: every outer station to the nearest inner station.
	for i := 0; i < outer; i++ {
		oi := inner + i
		best, bestD := 0, math.Inf(1)
		for j := 0; j < inner; j++ {
			if d := nodeDist(g.nodes[oi], g.nodes[j]); d < bestD {
				best, bestD = j, d
			}
		}
		_ = g.AddLink(oi, best, cfg.drawRate(r))
	}
	g.Finalize()
	return g
}

// connect links the components of g (nearest pair across the first two
// components, repeatedly) until g is connected.
func connect(g *Graph, cfg GenConfig, r interface{ Float64() float64 }) {
	for {
		comps := g.Components()
		if len(comps) <= 1 {
			return
		}
		bestA, bestB, bestD := -1, -1, math.Inf(1)
		for _, a := range comps[0] {
			for _, b := range comps[1] {
				if d := nodeDist(g.nodes[a], g.nodes[b]); d < bestD {
					bestA, bestB, bestD = a, b, d
				}
			}
		}
		_ = g.AddLink(bestA, bestB, cfg.drawRate(r))
	}
}

func nodeDist(a, b Node) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}
