// Package topology models the substrate edge network G(V, L) of the SoCL
// paper: edge servers with compute and storage capacities connected by
// wireless backhaul links whose transmission rate follows the Shannon
// capacity formula b(l) = B(l)·log2(1 + γ·g/N).
//
// The package precomputes, for every node pair, the minimum-transfer-time
// path (used for data-plane latency and for the harmonic-mean virtual link
// speed 𝔹(l') of Algorithm 1) and the minimum-hop path (used for the result
// return path π*(v_d, v_s) of the completion-time model).
package topology

import (
	"fmt"
	"math"
)

// NodeID identifies an edge server within a Graph. IDs are dense: the k-th
// added node has ID k.
type NodeID = int

// Node is an edge server v_k.
type Node struct {
	ID      NodeID
	X, Y    float64 // planar position, km (used by generators and mobility)
	Compute float64 // c(v_k), GFLOP/s
	Storage float64 // Φ(v_k), storage units
}

// Link is a physical communication link l_{a,b} between two edge servers.
// Rate is the effective Shannon transmission rate b(l) in GB/s; it is
// computed once at insertion time from the nominal bandwidth and SNR.
type Link struct {
	A, B NodeID
	Rate float64 // b(l) = B(l)·log2(1 + γ·g/N), GB/s
}

// ShannonRate returns the effective rate B·log2(1 + γ·g/N) of a link with
// nominal bandwidth bw, transmit power gamma, channel gain g and noise power
// n. Non-positive noise or bandwidth yields 0.
func ShannonRate(bw, gamma, g, n float64) float64 {
	if bw <= 0 || n <= 0 || gamma*g < 0 {
		return 0
	}
	return bw * math.Log2(1+gamma*g/n)
}

type edge struct {
	to   NodeID
	rate float64
}

// Graph is a weighted undirected edge network. The zero value is unusable;
// construct with New and populate via AddNode/AddLink, then call Finalize
// (or use a generator from gen.go, which finalizes for you).
type Graph struct {
	nodes []Node
	adj   [][]edge
	rates map[[2]NodeID]float64

	// Precomputed by Finalize.
	finalized bool
	// timeCost[a][b] = Σ 1/b(l) over the minimum-transfer-time path from a
	// to b: the seconds needed to move one GB. +Inf if disconnected.
	timeCost [][]float64
	// timeNext[a][b] = next hop from a on the minimum-time path to b, or -1.
	timeNext [][]NodeID
	// hops[a][b] = number of links on the minimum-hop path, or -1.
	hops [][]int
	// hopCost[a][b] = Σ 1/b(l) along the minimum-hop path (tie-broken by
	// transfer time); +Inf if disconnected. Used for d_out.
	hopCost [][]float64
}

// New returns an empty graph with capacity hints for n nodes.
func New(n int) *Graph {
	return &Graph{
		nodes: make([]Node, 0, n),
		adj:   make([][]edge, 0, n),
		rates: make(map[[2]NodeID]float64),
	}
}

// AddNode appends an edge server and returns its ID.
func (g *Graph) AddNode(x, y, compute, storage float64) NodeID {
	id := len(g.nodes)
	g.nodes = append(g.nodes, Node{ID: id, X: x, Y: y, Compute: compute, Storage: storage})
	g.adj = append(g.adj, nil)
	g.finalized = false
	return id
}

// AddLink inserts an undirected link with effective rate rate (GB/s).
// Adding a link with a non-positive rate, a self-loop, or an out-of-range
// endpoint returns an error. Re-adding an existing pair updates the rate.
func (g *Graph) AddLink(a, b NodeID, rate float64) error {
	if a == b {
		return fmt.Errorf("topology: self-loop on node %d", a)
	}
	if a < 0 || b < 0 || a >= len(g.nodes) || b >= len(g.nodes) {
		return fmt.Errorf("topology: link endpoints (%d,%d) out of range [0,%d)", a, b, len(g.nodes))
	}
	if rate <= 0 {
		return fmt.Errorf("topology: non-positive rate %v on link (%d,%d)", rate, a, b)
	}
	key := linkKey(a, b)
	if _, exists := g.rates[key]; exists {
		g.rates[key] = rate
		for _, pair := range [2][2]NodeID{{a, b}, {b, a}} {
			for i := range g.adj[pair[0]] {
				if g.adj[pair[0]][i].to == pair[1] {
					g.adj[pair[0]][i].rate = rate
				}
			}
		}
	} else {
		g.rates[key] = rate
		g.adj[a] = append(g.adj[a], edge{to: b, rate: rate})
		g.adj[b] = append(g.adj[b], edge{to: a, rate: rate})
	}
	g.finalized = false
	return nil
}

func linkKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.nodes) }

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Nodes returns a copy of the node slice.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// Links returns all links (each undirected pair once).
func (g *Graph) Links() []Link {
	out := make([]Link, 0, len(g.rates))
	for k, r := range g.rates {
		out = append(out, Link{A: k[0], B: k[1], Rate: r})
	}
	return out
}

// LinkRate returns the direct-link rate b(l_{a,b}) and whether such a link
// exists.
func (g *Graph) LinkRate(a, b NodeID) (float64, bool) {
	r, ok := g.rates[linkKey(a, b)]
	return r, ok
}

// Degree returns the number of direct links incident to v (the ℋ(v) of
// Theorem 1).
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Neighbors returns the IDs of nodes directly linked to v.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	out := make([]NodeID, len(g.adj[v]))
	for i, e := range g.adj[v] {
		out[i] = e.to
	}
	return out
}

// Finalize computes all-pairs minimum-transfer-time paths (Dijkstra per
// source over weight 1/rate) and minimum-hop paths (BFS with transfer-time
// tie-breaking). It must be called after topology edits and before any query;
// queries on a non-finalized graph panic. Generators return finalized graphs.
func (g *Graph) Finalize() {
	n := len(g.nodes)
	g.timeCost = make([][]float64, n)
	g.timeNext = make([][]NodeID, n)
	g.hops = make([][]int, n)
	g.hopCost = make([][]float64, n)
	for s := 0; s < n; s++ {
		g.timeCost[s], g.timeNext[s] = g.dijkstra(s)
		g.hops[s], g.hopCost[s] = g.bfsHops(s)
	}
	g.finalized = true
}

func (g *Graph) checkFinalized() {
	if !g.finalized {
		panic("topology: query on non-finalized graph; call Finalize()")
	}
}

// dijkstra computes, from source s, the minimal Σ 1/rate to every node and a
// next-hop table for path reconstruction.
func (g *Graph) dijkstra(s NodeID) ([]float64, []NodeID) {
	n := len(g.nodes)
	dist := make([]float64, n)
	prev := make([]NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[s] = 0
	pq := &costHeap{}
	pq.push(item{node: s, cost: 0})
	for pq.len() > 0 {
		it := pq.pop()
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range g.adj[u] {
			c := dist[u] + 1/e.rate
			if c < dist[e.to] {
				dist[e.to] = c
				prev[e.to] = u
				pq.push(item{node: e.to, cost: c})
			}
		}
	}
	// Convert predecessor tree into next-hop-from-s table.
	next := make([]NodeID, n)
	for v := 0; v < n; v++ {
		if v == s || prev[v] == -1 {
			next[v] = -1
			continue
		}
		cur := v
		for prev[cur] != s {
			cur = prev[cur]
		}
		next[v] = cur
	}
	return dist, next
}

// bfsHops computes minimum hop counts from s, and the Σ 1/rate along a
// minimum-hop path chosen to minimize transfer time among equal-hop paths.
func (g *Graph) bfsHops(s NodeID) ([]int, []float64) {
	n := len(g.nodes)
	hops := make([]int, n)
	cost := make([]float64, n)
	for i := range hops {
		hops[i] = -1
		cost[i] = math.Inf(1)
	}
	hops[s] = 0
	cost[s] = 0
	frontier := []NodeID{s}
	for len(frontier) > 0 {
		var next []NodeID
		for _, u := range frontier {
			for _, e := range g.adj[u] {
				c := cost[u] + 1/e.rate
				switch {
				case hops[e.to] == -1:
					hops[e.to] = hops[u] + 1
					cost[e.to] = c
					next = append(next, e.to)
				case hops[e.to] == hops[u]+1 && c < cost[e.to]:
					cost[e.to] = c
				}
			}
		}
		frontier = next
	}
	return hops, cost
}

// PathCost returns the seconds-per-GB of the minimum-transfer-time path from
// a to b: Σ_{l ∈ π(a,b)} 1/b(l). It is 0 when a == b and +Inf when a and b
// are disconnected.
func (g *Graph) PathCost(a, b NodeID) float64 {
	g.checkFinalized()
	return g.timeCost[a][b]
}

// VirtualSpeed returns the harmonic-mean channel speed 𝔹(l'_{a,b}) of the
// virtual link between a and b: 1 / Σ 1/b(l) along the minimum-time path.
// It is +Inf when a == b and 0 when disconnected.
func (g *Graph) VirtualSpeed(a, b NodeID) float64 {
	c := g.PathCost(a, b)
	//socllint:ignore floateq PathCost returns literal 0 only for a==b; positive costs never sum to exactly zero
	if c == 0 {
		return math.Inf(1)
	}
	return 1 / c
}

// TransferTime returns the time (s) to move r GB from a to b along the
// minimum-time path: r · PathCost(a, b). Zero when a == b.
func (g *Graph) TransferTime(a, b NodeID, r float64) float64 {
	return r * g.PathCost(a, b)
}

// Hops returns the number of links on the minimum-hop path from a to b, or
// -1 when disconnected.
func (g *Graph) Hops(a, b NodeID) int {
	g.checkFinalized()
	return g.hops[a][b]
}

// HopPathCost returns Σ 1/b(l) along the minimum-hop path π*(a,b) (the
// return-path metric for d_out). +Inf when disconnected, 0 when a == b.
func (g *Graph) HopPathCost(a, b NodeID) float64 {
	g.checkFinalized()
	return g.hopCost[a][b]
}

// Path reconstructs the minimum-transfer-time path from a to b, inclusive of
// both endpoints. It returns nil when disconnected and [a] when a == b.
func (g *Graph) Path(a, b NodeID) []NodeID {
	g.checkFinalized()
	if a == b {
		return []NodeID{a}
	}
	if math.IsInf(g.timeCost[a][b], 1) {
		return nil
	}
	path := []NodeID{a}
	cur := a
	for cur != b {
		cur = g.timeNext[cur][b]
		if cur == -1 {
			return nil
		}
		path = append(path, cur)
	}
	return path
}

// Connected reports whether every node can reach every other node.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	comp := g.Components()
	return len(comp) == 1
}

// Components returns the connected components of the graph as slices of
// node IDs, each sorted ascending, ordered by smallest member.
func (g *Graph) Components() [][]NodeID {
	n := len(g.nodes)
	seen := make([]bool, n)
	var comps [][]NodeID
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		var comp []NodeID
		stack := []NodeID{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, e := range g.adj[u] {
				if !seen[e.to] {
					seen[e.to] = true
					stack = append(stack, e.to)
				}
			}
		}
		sortIDs(comp)
		comps = append(comps, comp)
	}
	return comps
}

func sortIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// TotalStorage returns Σ_k Φ(v_k).
func (g *Graph) TotalStorage() float64 {
	s := 0.0
	for _, n := range g.nodes {
		s += n.Storage
	}
	return s
}

// item / costHeap: a minimal binary min-heap for Dijkstra, avoiding the
// container/heap interface boilerplate on the hot path.
type item struct {
	node NodeID
	cost float64
}

type costHeap struct{ a []item }

func (h *costHeap) len() int { return len(h.a) }

func (h *costHeap) push(it item) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p].cost <= h.a[i].cost {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *costHeap) pop() item {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.a[l].cost < h.a[small].cost {
			small = l
		}
		if r < len(h.a) && h.a[r].cost < h.a[small].cost {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
