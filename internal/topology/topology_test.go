package topology

import (
	"math"
	"testing"
	"testing/quick"
)

// line builds a 4-node path graph 0-1-2-3 with known rates.
func line(t *testing.T) *Graph {
	t.Helper()
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(float64(i), 0, 10, 5)
	}
	mustLink(t, g, 0, 1, 10) // cost 0.1 /GB
	mustLink(t, g, 1, 2, 20) // cost 0.05
	mustLink(t, g, 2, 3, 40) // cost 0.025
	g.Finalize()
	return g
}

func mustLink(t *testing.T, g *Graph, a, b NodeID, rate float64) {
	t.Helper()
	if err := g.AddLink(a, b, rate); err != nil {
		t.Fatalf("AddLink(%d,%d): %v", a, b, err)
	}
}

func TestShannonRate(t *testing.T) {
	// B=10, SNR=3 → 10·log2(4) = 20.
	if got := ShannonRate(10, 1, 3, 1); math.Abs(got-20) > 1e-9 {
		t.Fatalf("ShannonRate = %v, want 20", got)
	}
	if ShannonRate(0, 1, 3, 1) != 0 {
		t.Fatal("zero bandwidth should give zero rate")
	}
	if ShannonRate(10, 1, 3, 0) != 0 {
		t.Fatal("zero noise should give zero rate (guard)")
	}
}

func TestAddLinkErrors(t *testing.T) {
	g := New(2)
	g.AddNode(0, 0, 1, 1)
	g.AddNode(1, 0, 1, 1)
	if err := g.AddLink(0, 0, 5); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddLink(0, 7, 5); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if err := g.AddLink(0, 1, 0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if err := g.AddLink(0, 1, -3); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestAddLinkUpdateExisting(t *testing.T) {
	g := New(2)
	g.AddNode(0, 0, 1, 1)
	g.AddNode(1, 0, 1, 1)
	mustLink(t, g, 0, 1, 10)
	mustLink(t, g, 1, 0, 25) // update via reversed order
	g.Finalize()
	if r, ok := g.LinkRate(0, 1); !ok || r != 25 {
		t.Fatalf("LinkRate = %v,%v want 25,true", r, ok)
	}
	if len(g.Links()) != 1 {
		t.Fatalf("duplicate link stored: %v", g.Links())
	}
	if got := g.PathCost(0, 1); math.Abs(got-1.0/25) > 1e-12 {
		t.Fatalf("PathCost after update = %v", got)
	}
}

func TestPathCostLine(t *testing.T) {
	g := line(t)
	want := 0.1 + 0.05 + 0.025
	if got := g.PathCost(0, 3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PathCost(0,3) = %v, want %v", got, want)
	}
	if got := g.PathCost(3, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PathCost symmetric: %v", got)
	}
	if g.PathCost(2, 2) != 0 {
		t.Fatal("PathCost(self) != 0")
	}
}

func TestVirtualSpeedHarmonicMean(t *testing.T) {
	g := line(t)
	// 𝔹 = 1/(1/10+1/20+1/40) = 1/0.175
	want := 1 / 0.175
	if got := g.VirtualSpeed(0, 3); math.Abs(got-want) > 1e-9 {
		t.Fatalf("VirtualSpeed = %v, want %v", got, want)
	}
	if !math.IsInf(g.VirtualSpeed(1, 1), 1) {
		t.Fatal("self virtual speed should be +Inf")
	}
}

func TestTransferTime(t *testing.T) {
	g := line(t)
	if got := g.TransferTime(0, 1, 5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("TransferTime = %v, want 0.5", got)
	}
	if g.TransferTime(2, 2, 100) != 0 {
		t.Fatal("self transfer should cost 0")
	}
}

func TestHopsAndHopPathCost(t *testing.T) {
	// Square with a shortcut: 0-1 (fast), 1-3 (fast), 0-2 (slow), 2-3 (slow),
	// plus direct 0-3 very slow. Min-hop 0→3 is the direct link (1 hop),
	// min-time is 0-1-3.
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(0, 0, 1, 1)
	}
	mustLink(t, g, 0, 1, 100)
	mustLink(t, g, 1, 3, 100)
	mustLink(t, g, 0, 2, 10)
	mustLink(t, g, 2, 3, 10)
	mustLink(t, g, 0, 3, 1)
	g.Finalize()
	if got := g.Hops(0, 3); got != 1 {
		t.Fatalf("Hops(0,3) = %d, want 1", got)
	}
	if got := g.HopPathCost(0, 3); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("HopPathCost(0,3) = %v, want 1.0", got)
	}
	if got := g.PathCost(0, 3); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("PathCost(0,3) = %v, want 0.02 (via node 1)", got)
	}
}

func TestHopTieBreakPrefersFasterPath(t *testing.T) {
	// Two 2-hop paths 0-1-3 (fast) and 0-2-3 (slow): hop cost should pick
	// the fast one.
	g := New(4)
	for i := 0; i < 4; i++ {
		g.AddNode(0, 0, 1, 1)
	}
	mustLink(t, g, 0, 1, 100)
	mustLink(t, g, 1, 3, 100)
	mustLink(t, g, 0, 2, 10)
	mustLink(t, g, 2, 3, 10)
	g.Finalize()
	if got := g.Hops(0, 3); got != 2 {
		t.Fatalf("Hops = %d", got)
	}
	if got := g.HopPathCost(0, 3); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("HopPathCost = %v, want 0.02", got)
	}
}

func TestPathReconstruction(t *testing.T) {
	g := line(t)
	p := g.Path(0, 3)
	want := []NodeID{0, 1, 2, 3}
	if len(p) != len(want) {
		t.Fatalf("Path = %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("Path = %v, want %v", p, want)
		}
	}
	if p := g.Path(2, 2); len(p) != 1 || p[0] != 2 {
		t.Fatalf("self path = %v", p)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(3)
	g.AddNode(0, 0, 1, 1)
	g.AddNode(1, 0, 1, 1)
	g.AddNode(2, 0, 1, 1)
	mustLink(t, g, 0, 1, 10)
	g.Finalize()
	if g.Connected() {
		t.Fatal("graph should be disconnected")
	}
	if !math.IsInf(g.PathCost(0, 2), 1) {
		t.Fatal("PathCost to unreachable should be +Inf")
	}
	if g.Hops(0, 2) != -1 {
		t.Fatal("Hops to unreachable should be -1")
	}
	if g.Path(0, 2) != nil {
		t.Fatal("Path to unreachable should be nil")
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Fatalf("Components = %v", comps)
	}
}

func TestQueryBeforeFinalizePanics(t *testing.T) {
	g := New(2)
	g.AddNode(0, 0, 1, 1)
	g.AddNode(1, 0, 1, 1)
	mustLink(t, g, 0, 1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("PathCost before Finalize did not panic")
		}
	}()
	g.PathCost(0, 1)
}

func TestDegreeNeighbors(t *testing.T) {
	g := line(t)
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Fatalf("Degrees = %d,%d", g.Degree(1), g.Degree(0))
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 {
		t.Fatalf("Neighbors(1) = %v", nb)
	}
}

func TestTotalStorage(t *testing.T) {
	g := line(t)
	if got := g.TotalStorage(); got != 20 {
		t.Fatalf("TotalStorage = %v, want 20", got)
	}
}

func TestGeneratorsConnectedAndInRange(t *testing.T) {
	cfg := DefaultGenConfig()
	cases := []struct {
		name string
		g    *Graph
	}{
		{"geometric", RandomGeometric(25, 0.25, cfg, 1)},
		{"ringhubs", RingHubs(12, 3, cfg, 2)},
		{"grid", Grid(4, 5, cfg, 3)},
		{"stadium", Stadium(14, cfg, 4)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if !c.g.Connected() {
				t.Fatal("generated graph disconnected")
			}
			for _, n := range c.g.Nodes() {
				if n.Compute < cfg.ComputeMin-1e-9 || n.Compute > cfg.ComputeMax+1e-9 {
					t.Fatalf("compute %v out of range", n.Compute)
				}
				if n.Storage < cfg.StorageMin-1e-9 || n.Storage > cfg.StorageMax+1e-9 {
					t.Fatalf("storage %v out of range", n.Storage)
				}
			}
			for _, l := range c.g.Links() {
				if l.Rate < cfg.RateMin-1e-6 || l.Rate > cfg.RateMax+1e-6 {
					t.Fatalf("link rate %v out of range [%v,%v]", l.Rate, cfg.RateMin, cfg.RateMax)
				}
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RandomGeometric(15, 0.3, DefaultGenConfig(), 99)
	b := RandomGeometric(15, 0.3, DefaultGenConfig(), 99)
	if a.N() != b.N() || len(a.Links()) != len(b.Links()) {
		t.Fatal("same seed produced different graphs")
	}
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.N(); j++ {
			if math.Abs(a.PathCost(i, j)-b.PathCost(i, j)) > 1e-12 {
				t.Fatalf("path costs differ at (%d,%d)", i, j)
			}
		}
	}
}

func TestStadiumMinimumSize(t *testing.T) {
	g := Stadium(2, DefaultGenConfig(), 5) // clamped to 6
	if g.N() != 6 {
		t.Fatalf("Stadium(2) nodes = %d, want clamp to 6", g.N())
	}
	if !g.Connected() {
		t.Fatal("stadium disconnected")
	}
}

// Property: PathCost satisfies the triangle inequality and symmetry on
// random connected graphs.
func TestPathCostMetricProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomGeometric(12, 0.3, DefaultGenConfig(), seed)
		for a := 0; a < g.N(); a++ {
			for b := 0; b < g.N(); b++ {
				if math.Abs(g.PathCost(a, b)-g.PathCost(b, a)) > 1e-9 {
					return false
				}
				for c := 0; c < g.N(); c++ {
					if g.PathCost(a, b) > g.PathCost(a, c)+g.PathCost(c, b)+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: the minimum-hop path never has more hops than the minimum-time
// path, and virtual speed is within [min link rate, max link rate] of the
// graph for connected pairs.
func TestHopAndSpeedBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomGeometric(10, 0.35, DefaultGenConfig(), seed)
		minRate, maxRate := math.Inf(1), 0.0
		for _, l := range g.Links() {
			minRate = math.Min(minRate, l.Rate)
			maxRate = math.Max(maxRate, l.Rate)
		}
		for a := 0; a < g.N(); a++ {
			for b := 0; b < g.N(); b++ {
				if a == b {
					continue
				}
				if len(g.Path(a, b))-1 < g.Hops(a, b) {
					return false
				}
				v := g.VirtualSpeed(a, b)
				if v > maxRate+1e-6 {
					return false // can't beat the best single link
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
