// Package trace synthesizes Alibaba-Cluster-like microservice request
// traces and implements the analyses behind the SoCL paper's motivation
// figures: service/trace similarity (Fig. 3) and the temporal distribution
// of request volumes (Fig. 4).
//
// The real Alibaba Cluster Trace Program data is proprietary-scale and not
// redistributable here; per DESIGN.md, this generator reproduces the
// summary statistics the paper relies on — heterogeneous per-service
// activity profiles across trace files, dependency chains longer than 12
// microservices with bounded cross-trace similarity (max ≈ 0.65), and a
// double-peaked diurnal request-rate curve with noise.
package trace

import (
	"math"
	"sort"

	"repro/internal/stats"
)

// Config parameterizes trace synthesis.
type Config struct {
	NumServices     int     // number of distinct services (paper: top 10)
	NumFiles        int     // trace files the events are sharded into
	DurationMinutes float64 // total trace span
	BaseRatePerMin  float64 // baseline arrival intensity per service

	// Peaks are diurnal intensity bumps: at PeakTimes[i] (minutes), the
	// rate is multiplied by 1 + PeakGains[i]·gauss(t; σ=PeakWidth).
	PeakTimes []float64
	PeakGains []float64
	PeakWidth float64

	// ChainLength is the dependency-chain length for long-chain services
	// (paper: > 12 microservices).
	ChainLength int
	// ChainPool is the microservice universe per service from which chains
	// are drawn; the pool/length ratio bounds the max cross-trace Jaccard
	// similarity (pool 2× length → max ≈ 0.6-0.7, matching Fig. 3(b)).
	ChainPool int

	Seed int64
}

// DefaultConfig returns a 10-hour, 10-service trace shaped after the
// paper's Figures 3–4.
func DefaultConfig() Config {
	return Config{
		NumServices:     10,
		NumFiles:        6,
		DurationMinutes: 600, // 10 hours
		BaseRatePerMin:  2,
		PeakTimes:       []float64{120, 420},
		PeakGains:       []float64{3, 4},
		PeakWidth:       45,
		ChainLength:     13,
		ChainPool:       26,
		Seed:            1,
	}
}

// Event is one recorded request.
type Event struct {
	Time    float64 // minutes since trace start
	Service int     // service index [0, NumServices)
	File    int     // trace file shard
	Chain   []int   // microservice dependency chain (IDs within the service pool)
}

// Trace is a generated event log.
type Trace struct {
	Config Config
	Events []Event
	// chains[svc][file] is the chain variant service svc uses in that file.
	chains [][][]int
}

// Generate synthesizes a trace. Arrival times follow an inhomogeneous
// Poisson process via thinning; each service has its own random activity
// profile so per-file service mixes differ (Fig. 3(a) heterogeneity).
func Generate(cfg Config) *Trace {
	if cfg.NumServices < 1 {
		cfg.NumServices = 1
	}
	if cfg.NumFiles < 1 {
		cfg.NumFiles = 1
	}
	if cfg.DurationMinutes <= 0 {
		cfg.DurationMinutes = 60
	}
	if cfg.ChainLength < 2 {
		cfg.ChainLength = 2
	}
	if cfg.ChainPool < cfg.ChainLength {
		cfg.ChainPool = cfg.ChainLength
	}
	r := stats.NewRand(stats.SplitSeed(cfg.Seed, "trace/gen"))
	tr := &Trace{Config: cfg}

	// Per-service chain variants per file: ChainLength microservices drawn
	// from the service's pool, resampled per file with partial overlap.
	tr.chains = make([][][]int, cfg.NumServices)
	for s := 0; s < cfg.NumServices; s++ {
		tr.chains[s] = make([][]int, cfg.NumFiles)
		for f := 0; f < cfg.NumFiles; f++ {
			perm := r.Perm(cfg.ChainPool)
			chain := append([]int(nil), perm[:cfg.ChainLength]...)
			sort.Ints(chain)
			tr.chains[s][f] = chain
		}
	}

	// Per-service multiplicative activity: a random phase/amplitude over
	// the peak curve so services peak differently.
	phase := make([]float64, cfg.NumServices)
	amp := make([]float64, cfg.NumServices)
	for s := range phase {
		phase[s] = (r.Float64() - 0.5) * 120 // ±1 h shift
		amp[s] = 0.5 + r.Float64()*1.5
	}

	// Thinning: the intensity upper bound is base·(1+Σgains)·maxAmp.
	maxGain := 0.0
	for _, g := range cfg.PeakGains {
		maxGain += g
	}
	for s := 0; s < cfg.NumServices; s++ {
		lambdaMax := cfg.BaseRatePerMin * (1 + maxGain) * amp[s] * 2
		t := 0.0
		for {
			t += -math.Log(1-r.Float64()) / lambdaMax
			if t >= cfg.DurationMinutes {
				break
			}
			if r.Float64()*lambdaMax <= tr.intensity(s, t, phase[s], amp[s]) {
				f := int(t / cfg.DurationMinutes * float64(cfg.NumFiles))
				if f >= cfg.NumFiles {
					f = cfg.NumFiles - 1
				}
				tr.Events = append(tr.Events, Event{
					Time: t, Service: s, File: f, Chain: tr.chains[s][f],
				})
			}
		}
	}
	sort.Slice(tr.Events, func(i, j int) bool { return tr.Events[i].Time < tr.Events[j].Time })
	return tr
}

// intensity is the arrival rate (events/min) for service s at time t.
func (tr *Trace) intensity(s int, t, phase, amp float64) float64 {
	cfg := tr.Config
	rate := cfg.BaseRatePerMin
	for i, pt := range cfg.PeakTimes {
		gain := 1.0
		if i < len(cfg.PeakGains) {
			gain = cfg.PeakGains[i]
		}
		d := t - (pt + phase)
		rate += cfg.BaseRatePerMin * gain * math.Exp(-d*d/(2*cfg.PeakWidth*cfg.PeakWidth))
	}
	return rate * amp
}

// TemporalHistogram bins all events into intervals of binMinutes — the
// Fig. 4 request-volume curve.
func (tr *Trace) TemporalHistogram(binMinutes float64) []int {
	if binMinutes <= 0 {
		binMinutes = 10
	}
	n := int(math.Ceil(tr.Config.DurationMinutes / binMinutes))
	bins := make([]int, n)
	for _, e := range tr.Events {
		i := int(e.Time / binMinutes)
		if i >= n {
			i = n - 1
		}
		bins[i]++
	}
	return bins
}

// ServiceProfiles returns the per-service temporal rate vectors (events per
// bin), the raw material of the Fig. 3(a) similarity analysis.
func (tr *Trace) ServiceProfiles(binMinutes float64) [][]float64 {
	if binMinutes <= 0 {
		binMinutes = 10
	}
	n := int(math.Ceil(tr.Config.DurationMinutes / binMinutes))
	prof := make([][]float64, tr.Config.NumServices)
	for s := range prof {
		prof[s] = make([]float64, n)
	}
	for _, e := range tr.Events {
		i := int(e.Time / binMinutes)
		if i >= n {
			i = n - 1
		}
		prof[e.Service][i]++
	}
	return prof
}

// ServiceSimilarityMatrix computes pairwise cosine similarities of the
// services' temporal profiles (Fig. 3(a)).
func (tr *Trace) ServiceSimilarityMatrix(binMinutes float64) [][]float64 {
	prof := tr.ServiceProfiles(binMinutes)
	n := len(prof)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = stats.CosineSimilarity(prof[i], prof[j])
		}
	}
	return m
}

// FileServiceMix returns, per trace file, the service-frequency vector.
func (tr *Trace) FileServiceMix() [][]float64 {
	mix := make([][]float64, tr.Config.NumFiles)
	for f := range mix {
		mix[f] = make([]float64, tr.Config.NumServices)
	}
	for _, e := range tr.Events {
		mix[e.File][e.Service]++
	}
	return mix
}

// ChainSimilarity computes, for every service, the pairwise Jaccard
// similarity of its dependency chains across trace files (Fig. 3(b)), and
// returns all pairwise values plus the maximum.
func (tr *Trace) ChainSimilarity() (values []float64, max float64) {
	for s := 0; s < tr.Config.NumServices; s++ {
		for f1 := 0; f1 < tr.Config.NumFiles; f1++ {
			for f2 := f1 + 1; f2 < tr.Config.NumFiles; f2++ {
				a := chainSet(tr.chains[s][f1])
				b := chainSet(tr.chains[s][f2])
				v := stats.JaccardSimilarity(a, b)
				values = append(values, v)
				if v > max {
					max = v
				}
			}
		}
	}
	return values, max
}

func chainSet(chain []int) map[int]bool {
	set := make(map[int]bool, len(chain))
	for _, c := range chain {
		set[c] = true
	}
	return set
}

// PeakToMeanRatio summarizes the burstiness of the trace: the maximum bin
// count divided by the mean bin count (Fig. 4's "recurring peaks").
func (tr *Trace) PeakToMeanRatio(binMinutes float64) float64 {
	bins := tr.TemporalHistogram(binMinutes)
	if len(bins) == 0 {
		return 0
	}
	sum, max := 0, 0
	for _, b := range bins {
		sum += b
		if b > max {
			max = b
		}
	}
	mean := float64(sum) / float64(len(bins))
	//socllint:ignore floateq exact zero mean means every bin count is zero (integer sum cast to float)
	if mean == 0 {
		return 0
	}
	return float64(max) / mean
}
