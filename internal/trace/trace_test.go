package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateBasicShape(t *testing.T) {
	tr := Generate(DefaultConfig())
	if len(tr.Events) == 0 {
		t.Fatal("no events generated")
	}
	cfg := tr.Config
	for _, e := range tr.Events {
		if e.Time < 0 || e.Time >= cfg.DurationMinutes {
			t.Fatalf("event time %v out of range", e.Time)
		}
		if e.Service < 0 || e.Service >= cfg.NumServices {
			t.Fatalf("service %d out of range", e.Service)
		}
		if e.File < 0 || e.File >= cfg.NumFiles {
			t.Fatalf("file %d out of range", e.File)
		}
		if len(e.Chain) != cfg.ChainLength {
			t.Fatalf("chain length %d, want %d", len(e.Chain), cfg.ChainLength)
		}
	}
	// Events sorted by time.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Time < tr.Events[i-1].Time {
			t.Fatal("events not sorted")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig())
	b := Generate(DefaultConfig())
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed produced different event counts")
	}
	for i := range a.Events {
		if a.Events[i].Time != b.Events[i].Time || a.Events[i].Service != b.Events[i].Service {
			t.Fatal("same seed produced different events")
		}
	}
}

func TestConfigClamping(t *testing.T) {
	cfg := Config{NumServices: 0, NumFiles: 0, DurationMinutes: -5, ChainLength: 0, ChainPool: 0, BaseRatePerMin: 1, Seed: 2}
	tr := Generate(cfg)
	if tr.Config.NumServices != 1 || tr.Config.NumFiles != 1 {
		t.Fatalf("clamping failed: %+v", tr.Config)
	}
	if tr.Config.ChainPool < tr.Config.ChainLength {
		t.Fatal("pool smaller than chain length")
	}
}

func TestTemporalHistogramConservation(t *testing.T) {
	tr := Generate(DefaultConfig())
	bins := tr.TemporalHistogram(10)
	total := 0
	for _, b := range bins {
		total += b
	}
	if total != len(tr.Events) {
		t.Fatalf("histogram total %d != events %d", total, len(tr.Events))
	}
}

func TestTemporalPeaksVisible(t *testing.T) {
	tr := Generate(DefaultConfig())
	ratio := tr.PeakToMeanRatio(10)
	if ratio < 1.5 {
		t.Fatalf("peak-to-mean ratio %v too flat; peaks not reproduced", ratio)
	}
}

func TestServiceSimilarityMatrixProperties(t *testing.T) {
	tr := Generate(DefaultConfig())
	m := tr.ServiceSimilarityMatrix(10)
	n := tr.Config.NumServices
	if len(m) != n {
		t.Fatalf("matrix size %d", len(m))
	}
	for i := 0; i < n; i++ {
		if math.Abs(m[i][i]-1) > 1e-9 {
			t.Fatalf("diagonal m[%d][%d] = %v", i, i, m[i][i])
		}
		for j := 0; j < n; j++ {
			if m[i][j] < 0 || m[i][j] > 1+1e-9 {
				t.Fatalf("similarity out of range: %v", m[i][j])
			}
			if math.Abs(m[i][j]-m[j][i]) > 1e-9 {
				t.Fatal("matrix not symmetric")
			}
		}
	}
	// Heterogeneity (Fig. 3a): not all off-diagonal similarities are ~1.
	low := false
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if m[i][j] < 0.97 {
				low = true
			}
		}
	}
	if !low {
		t.Fatal("all services perfectly similar; trace lacks diversity")
	}
}

func TestChainSimilarityBounded(t *testing.T) {
	tr := Generate(DefaultConfig())
	values, max := tr.ChainSimilarity()
	if len(values) == 0 {
		t.Fatal("no similarity values")
	}
	for _, v := range values {
		if v < 0 || v > 1 {
			t.Fatalf("similarity %v out of [0,1]", v)
		}
	}
	// Fig. 3(b): chains across traces are diverse — max well below 1.
	if max > 0.9 {
		t.Fatalf("max chain similarity %v too high; want diversity", max)
	}
	if max < 0.2 {
		t.Fatalf("max chain similarity %v too low; chains should overlap some", max)
	}
}

func TestFileServiceMix(t *testing.T) {
	tr := Generate(DefaultConfig())
	mix := tr.FileServiceMix()
	if len(mix) != tr.Config.NumFiles {
		t.Fatalf("mix files = %d", len(mix))
	}
	total := 0.0
	for _, row := range mix {
		for _, v := range row {
			total += v
		}
	}
	if int(total) != len(tr.Events) {
		t.Fatalf("mix total %v != events %d", total, len(tr.Events))
	}
}

// Property: event counts scale roughly linearly with the base rate.
func TestRateScalingProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.DurationMinutes = 120
		lo := Generate(cfg)
		cfg.BaseRatePerMin *= 3
		hi := Generate(cfg)
		// 3× the rate should give roughly 3× the events (±50%).
		ratio := float64(len(hi.Events)) / math.Max(1, float64(len(lo.Events)))
		return ratio > 1.5 && ratio < 6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: histograms never lose events for any bin width.
func TestHistogramConservationProperty(t *testing.T) {
	tr := Generate(DefaultConfig())
	f := func(width uint8) bool {
		w := float64(width%60) + 1
		bins := tr.TemporalHistogram(w)
		total := 0
		for _, b := range bins {
			total += b
		}
		return total == len(tr.Events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
