package transport

import "repro/internal/invariant"

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

const (
	// BreakerClosed passes every reaction through to the inner policy.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits reactions to the degradation ladder.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe reaction through; its outcome
	// decides between re-closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "invalid"
}

// BreakerConfig tunes the circuit breaker around the solver/repair reaction
// path. The breaker counts two kinds of failure: a reaction that errors, and
// a reaction whose deterministic work cost (reactionCost: committed adds,
// evictions, and rolled-back probes, or CostBudget-scaled re-solves) exceeds
// CostBudget — a reaction that "succeeds" by burning the epoch's entire
// control-plane budget is an overload signal, not a success.
type BreakerConfig struct {
	// Enabled turns the breaker (and with it the GuardedPolicy ladder) on.
	Enabled bool
	// TripAfter is the consecutive-failure count that opens the breaker.
	// 0 means DefaultTripAfter.
	TripAfter int
	// Cooldown is how many epochs the breaker stays open before admitting a
	// half-open probe. 0 means DefaultCooldown.
	Cooldown int
	// CostBudget is the work-unit budget a single reaction may spend before
	// it counts as an overrun failure. 0 disables cost-based tripping
	// (only errors trip).
	CostBudget int
}

// Breaker defaults.
const (
	DefaultTripAfter = 3
	DefaultCooldown  = 4
)

func (c BreakerConfig) tripAfter() int {
	if c.TripAfter <= 0 {
		return DefaultTripAfter
	}
	return c.TripAfter
}

func (c BreakerConfig) cooldown() int {
	if c.Cooldown <= 0 {
		return DefaultCooldown
	}
	return c.Cooldown
}

// Breaker is the deterministic state machine. It is not goroutine-safe; the
// engine serializes access (and the server serializes the engine).
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	consec   int // consecutive failures while closed
	cooldown int // epochs left before open → half-open

	// Telemetry.
	trips     int
	failures  int
	overruns  int
	shortCirc int // reactions short-circuited while open
}

// NewBreaker builds a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker { return &Breaker{cfg: cfg} }

// State reports the automaton's current state.
func (b *Breaker) State() BreakerState { return b.state }

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() int { return b.trips }

// Allow reports whether the next reaction may run the real policy. An open
// breaker refuses (and counts the short-circuit); half-open admits the probe.
func (b *Breaker) Allow() bool {
	if b.state == BreakerOpen {
		b.shortCirc++
		return false
	}
	return true
}

// Record feeds one permitted reaction's outcome back: its deterministic work
// cost and whether it errored. Must follow an Allow() == true.
func (b *Breaker) Record(cost int, failed bool) {
	invariant.Assertf(b.state != BreakerOpen, "transport: breaker recorded a reaction while open")
	overrun := b.cfg.CostBudget > 0 && cost > b.cfg.CostBudget
	if overrun {
		b.overruns++
	}
	if failed {
		b.failures++
	}
	if !failed && !overrun {
		// Success: a half-open probe re-closes; a closed breaker forgets its
		// failure streak.
		b.state = BreakerClosed
		b.consec = 0
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		// Failed probe: straight back to open for another cooldown.
		b.open()
	case BreakerClosed:
		b.consec++
		if b.consec >= b.cfg.tripAfter() {
			b.open()
		}
	}
}

func (b *Breaker) open() {
	b.state = BreakerOpen
	b.cooldown = b.cfg.cooldown()
	b.consec = 0
	b.trips++
}

// OnEpoch advances the cooldown clock; call once per daemon epoch.
func (b *Breaker) OnEpoch() {
	if b.state != BreakerOpen {
		return
	}
	b.cooldown--
	if b.cooldown <= 0 {
		b.state = BreakerHalfOpen
	}
}
