package transport

import "testing"

func TestBreakerTripsAndRecovers(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enabled: true, TripAfter: 3, Cooldown: 2})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused reaction %d", i)
		}
		b.Record(0, true)
		if b.State() != BreakerClosed {
			t.Fatalf("tripped after %d failures, want 3", i+1)
		}
	}
	b.Allow()
	b.Record(0, true) // third consecutive failure
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d after 3 failures", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a reaction")
	}
	b.OnEpoch()
	if b.State() != BreakerOpen {
		t.Fatal("cooldown ended one epoch early")
	}
	b.OnEpoch()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state=%v after cooldown, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	b.Record(1, false) // successful probe
	if b.State() != BreakerClosed {
		t.Fatalf("state=%v after successful probe, want closed", b.State())
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enabled: true, TripAfter: 1, Cooldown: 1})
	b.Allow()
	b.Record(0, true)
	if b.State() != BreakerOpen {
		t.Fatal("TripAfter=1 did not trip on first failure")
	}
	b.OnEpoch()
	b.Allow()
	b.Record(0, true) // failed probe
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("state=%v trips=%d after failed probe, want open/2", b.State(), b.Trips())
	}
}

func TestBreakerCostOverrunTrips(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enabled: true, TripAfter: 2, CostBudget: 10})
	b.Allow()
	b.Record(11, false) // overrun counts as failure despite no error
	b.Allow()
	b.Record(50, false)
	if b.State() != BreakerOpen {
		t.Fatalf("state=%v after two cost overruns, want open", b.State())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(BreakerConfig{Enabled: true, TripAfter: 2})
	b.Allow()
	b.Record(0, true)
	b.Allow()
	b.Record(1, false) // success clears the streak
	b.Allow()
	b.Record(0, true)
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}
