package transport

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/serve"
	"repro/internal/stats"
)

// Client retry defaults.
const (
	DefaultRetryMax  = 12
	DefaultRetryBase = 2 * time.Millisecond
	DefaultRetryCap  = 100 * time.Millisecond
	DefaultTimeout   = 60 * time.Second
)

// ClientConfig tunes the sending side.
type ClientConfig struct {
	// Reliable retransmits every frame until the server acknowledges it —
	// the discipline that masks wire chaos and preserves the bitwise replay
	// contract. Open-loop (false) sends event frames exactly once,
	// fire-and-forget, and only the control frames (hello/tick/finish)
	// reliably: the overload-measurement mode.
	Reliable bool
	// RetryMax caps retransmission attempts per frame (0 = DefaultRetryMax).
	RetryMax int
	// RetryBase/RetryCap shape the capped exponential backoff between
	// retransmission sweeps; each sweep's delay is the exponential step
	// scaled by a jitter factor in [0.5, 1.0).
	RetryBase, RetryCap time.Duration
	// Seed feeds the jitter stream via stats.SplitSeed(Seed,
	// "transport/retry"): two clients with the same seed back off
	// identically.
	Seed int64
	// DefaultBudget stamps every event's deadline budget in slots (0 =
	// server default).
	DefaultBudget int
	// Chaos, when non-nil, impairs the client's sends: in reliable mode
	// every frame passes the link (retransmission recovers); in open-loop
	// mode only event frames do, control frames stay clean.
	Chaos *chaos.LinkConfig
	// Timeout bounds the whole session (0 = DefaultTimeout).
	Timeout time.Duration
}

func (c ClientConfig) retryMax() int {
	if c.RetryMax <= 0 {
		return DefaultRetryMax
	}
	return c.RetryMax
}

func (c ClientConfig) retryBase() time.Duration {
	if c.RetryBase <= 0 {
		return DefaultRetryBase
	}
	return c.RetryBase
}

func (c ClientConfig) retryCap() time.Duration {
	if c.RetryCap <= 0 {
		return DefaultRetryCap
	}
	return c.RetryCap
}

func (c ClientConfig) timeout() time.Duration {
	if c.Timeout <= 0 {
		return DefaultTimeout
	}
	return c.Timeout
}

// AckInfo is the final disposition the server reported for one frame.
type AckInfo struct {
	Status byte
	Reason string
}

// Report summarizes a client session.
type Report struct {
	// Accepted/Shed/Dup count event dispositions; Retransmits counts
	// retransmission sends beyond each frame's first attempt.
	Accepted, Shed, Dup int
	Retransmits         int
	// Summary is the server's MsgResult line; Errors collects MsgError
	// bodies.
	Summary string
	Errors  []string
	// Link reports the chaos the client's own link injected.
	Link chaos.LinkStats
}

// pollTick is the wait granularity while watching for acknowledgements.
const pollTick = time.Millisecond

// Client drives one session over a framed connection.
type Client struct {
	cfg  ClientConfig
	conn net.Conn
	bw   *bufio.Writer
	link *chaos.Link
	rng  *rand.Rand

	mu      sync.Mutex
	acks    map[uint64]AckInfo
	result  *Frame
	errs    []string
	readErr error
}

// Dial connects a client. network is "unix" or "tcp".
func Dial(network, addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.Dial(network, addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s %s: %w", network, addr, err)
	}
	c := &Client{
		cfg:  cfg,
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 64*1024),
		rng:  rand.New(rand.NewSource(stats.SplitSeed(cfg.Seed, "transport/retry"))),
		acks: make(map[uint64]AckInfo),
	}
	if cfg.Chaos != nil {
		c.link = chaos.NewLink(*cfg.Chaos, c.rawWrite)
	}
	return c, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) rawWrite(b []byte) error {
	if _, err := c.bw.Write(b); err != nil {
		return err
	}
	return c.bw.Flush()
}

// send writes one frame, stamping the attempt number so retransmits redraw
// their chaos fate. impaired routes through the chaos link when configured.
func (c *Client) send(fr Frame, attempt int, impaired bool) error {
	fr.Attempt = uint64(attempt)
	b := Encode(fr)
	if impaired && c.link != nil {
		return c.link.Send(b)
	}
	if c.link != nil {
		// Control frames overtaking held event frames would reorder the
		// session; flush the link first.
		if err := c.link.Flush(); err != nil {
			return err
		}
	}
	return c.rawWrite(b)
}

// backoff returns the capped exponential delay for a retransmission sweep,
// scaled by seeded jitter in [0.5, 1.0).
func (c *Client) backoff(round int) time.Duration {
	d := c.cfg.retryBase()
	for i := 0; i < round && d < c.cfg.retryCap(); i++ {
		d *= 2
	}
	if d > c.cfg.retryCap() {
		d = c.cfg.retryCap()
	}
	return time.Duration(float64(d) * (0.5 + 0.5*c.rng.Float64()))
}

// readLoop collects server responses into the ack map.
func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64*1024)
	for {
		fr, err := ReadFrame(br)
		c.mu.Lock()
		if err != nil {
			c.readErr = err
			c.mu.Unlock()
			return
		}
		switch fr.Type {
		case MsgAck:
			if status, reason, perr := ParseAckBody(fr.Body); perr == nil {
				// First ack wins, except a final disposition replaces a
				// provisional "held"/duplicate one.
				prev, ok := c.acks[fr.Seq]
				if !ok || (prev.Status == StatusDuplicate && status != StatusDuplicate) {
					c.acks[fr.Seq] = AckInfo{Status: status, Reason: reason}
				}
			}
		case MsgResult:
			f := cloneFrame(fr)
			c.result = &f
		case MsgError:
			c.errs = append(c.errs, string(fr.Body))
		}
		c.mu.Unlock()
	}
}

// acked reports a frame's disposition, if any.
func (c *Client) acked(seq uint64) (AckInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.acks[seq]
	return a, ok
}

// sessionState snapshots (result arrived, connection error).
func (c *Client) sessionState() (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.result != nil, c.readErr
}

// Run plays a script through the session and returns the client-side report.
func (c *Client) Run(s *serve.Script) (*Report, error) {
	frames, err := BuildSession(s, c.cfg.DefaultBudget)
	if err != nil {
		return nil, err
	}
	go c.readLoop()
	rep := &Report{}
	deadline := time.Now().Add(c.cfg.timeout())
	if c.cfg.Reliable {
		err = c.runReliable(frames, rep, deadline)
	} else {
		err = c.runOpenLoop(frames, rep, deadline)
	}
	c.mu.Lock()
	for i := range frames {
		// Non-event frames carry no disposition; an unacked event is an
		// open-loop drop — never acked, never admitted.
		if frames[i].Type == MsgEvent {
			switch a, ok := c.acks[frames[i].Seq]; {
			case !ok:
			case a.Status == StatusAccepted:
				rep.Accepted++
			case a.Status == StatusShed:
				rep.Shed++
			case a.Status == StatusDuplicate:
				rep.Dup++
			}
		}
	}
	if c.result != nil {
		rep.Summary = string(c.result.Body)
	}
	rep.Errors = append(rep.Errors, c.errs...)
	c.mu.Unlock()
	if c.link != nil {
		rep.Link = c.link.Stats()
	}
	return rep, err
}

// runReliable sends every frame and sweeps retransmissions with backoff
// until all frames are acknowledged and the result arrived.
func (c *Client) runReliable(frames []Frame, rep *Report, deadline time.Time) error {
	attempts := make([]int, len(frames))
	for i := range frames {
		if err := c.send(frames[i], 0, true); err != nil {
			return err
		}
	}
	for round := 0; ; round++ {
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: session timed out after %s", c.cfg.timeout())
		}
		gotResult, readErr := c.sessionState()
		if readErr != nil && !gotResult {
			return fmt.Errorf("transport: connection lost: %w", readErr)
		}
		var unacked []int
		for i := range frames {
			if _, ok := c.acked(frames[i].Seq); !ok {
				unacked = append(unacked, i)
			}
		}
		if len(unacked) == 0 && gotResult {
			return nil
		}
		time.Sleep(c.backoff(round))
		for _, i := range unacked {
			if _, ok := c.acked(frames[i].Seq); ok {
				continue
			}
			attempts[i]++
			if attempts[i] > c.cfg.retryMax() {
				return fmt.Errorf("transport: frame seq %d dropped %d times, giving up",
					frames[i].Seq, attempts[i])
			}
			rep.Retransmits++
			if err := c.send(frames[i], attempts[i], true); err != nil {
				return err
			}
		}
	}
}

// runOpenLoop fires event frames once through the impaired link and sends
// control frames reliably so the session itself survives the chaos.
func (c *Client) runOpenLoop(frames []Frame, rep *Report, deadline time.Time) error {
	for i := range frames {
		if frames[i].Type == MsgEvent {
			if err := c.send(frames[i], 0, true); err != nil {
				return err
			}
			continue
		}
		if err := c.sendControl(frames[i], rep, deadline); err != nil {
			return err
		}
		// An open-loop client never retransmits dropped event frames, so an
		// ordered server's sequence would stall on the first loss and the
		// session would only die by timeout. The hello ack names the server's
		// discipline: refuse the pairing up front.
		if frames[i].Type == MsgHello {
			if a, ok := c.acked(frames[i].Seq); ok && a.Reason == "ordered" {
				return fmt.Errorf("transport: open-loop client against an ordered server: dropped events would stall the sequence; use a reliable client or an -unordered server")
			}
		}
	}
	for {
		gotResult, readErr := c.sessionState()
		if gotResult {
			return nil
		}
		if readErr != nil {
			return fmt.Errorf("transport: connection lost: %w", readErr)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("transport: no result before timeout")
		}
		time.Sleep(pollTick)
	}
}

// sendControl delivers one control frame reliably (retransmit until acked;
// for the finish frame the result itself also counts as the ack).
func (c *Client) sendControl(fr Frame, rep *Report, deadline time.Time) error {
	for attempt := 0; ; attempt++ {
		if attempt > c.cfg.retryMax() {
			return fmt.Errorf("transport: control frame seq %d unacknowledged after %d attempts", fr.Seq, attempt)
		}
		if attempt > 0 {
			rep.Retransmits++
		}
		if err := c.send(fr, attempt, false); err != nil {
			return err
		}
		limit := time.Now().Add(c.backoff(attempt))
		for time.Now().Before(limit) {
			if _, ok := c.acked(fr.Seq); ok {
				return nil
			}
			gotResult, readErr := c.sessionState()
			if fr.Type == MsgFinish && gotResult {
				return nil
			}
			if readErr != nil && !gotResult {
				return fmt.Errorf("transport: connection lost: %w", readErr)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("transport: session timed out")
			}
			time.Sleep(pollTick)
		}
	}
}
