package transport

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/stats"
)

func backoffClient(seed int64) *Client {
	cfg := ClientConfig{Seed: seed}
	return &Client{
		cfg: cfg,
		rng: rand.New(rand.NewSource(stats.SplitSeed(seed, "transport/retry"))),
	}
}

// TestBackoffDeterministic pins the retry schedule to the seed: two clients
// with the same seed draw identical jittered delays, and a different seed
// diverges.
func TestBackoffDeterministic(t *testing.T) {
	a, b, c := backoffClient(4), backoffClient(4), backoffClient(5)
	same, diff := true, false
	for round := 0; round < 10; round++ {
		da, db, dc := a.backoff(round), b.backoff(round), c.backoff(round)
		if da != db {
			same = false
		}
		if da != dc {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different backoff sequences")
	}
	if !diff {
		t.Fatal("different seeds produced identical backoff sequences")
	}
}

func TestBackoffCappedExponential(t *testing.T) {
	cl := backoffClient(1)
	base, cap := cl.cfg.retryBase(), cl.cfg.retryCap()
	prevMax := time.Duration(0)
	for round := 0; round < 20; round++ {
		d := cl.backoff(round)
		// Jitter scales by [0.5, 1.0): the delay stays within half the
		// nominal step and the cap.
		nominal := base << uint(round)
		if nominal > cap || nominal <= 0 {
			nominal = cap
		}
		if d < nominal/2 || d >= nominal {
			t.Fatalf("round %d: delay %v outside [%v, %v)", round, d, nominal/2, nominal)
		}
		if d > cap {
			t.Fatalf("round %d: delay %v exceeds cap %v", round, d, cap)
		}
		if nominal == cap && prevMax == cap {
			// Saturated: nothing more to check beyond the cap bound.
			break
		}
		prevMax = nominal
	}
}
