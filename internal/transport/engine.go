package transport

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/invariant"
	"repro/internal/serve"
)

// Config wires an Engine: how to build the daemon from a session's meta line,
// and the frontend's overload-hardening knobs. The zero values of every knob
// are permissive (no bounds, no deadlines, no breaker), which is the reliable
// replay configuration.
type Config struct {
	// Factory builds the daemon wiring for a session from its hello meta
	// line. The engine wraps the config's Policy in a GuardedPolicy when the
	// breaker is enabled.
	Factory func(serve.Meta) (serve.Config, error)

	// Ordered admits frames strictly in sequence-number order: out-of-order
	// frames are held until the gap fills (the client retransmits dropped
	// frames). In this discipline chaos on the wire is fully masked — the
	// recorded script equals the sent one — so the bitwise replay-vs-sim.Run
	// contract holds end to end. Unordered mode admits frames as they
	// arrive; late frames can blow their deadline budget and are shed.
	Ordered bool

	// DeadlineSlots is the default per-event latency budget in epochs: an
	// event not admitted within budget epochs of its slot is shed, and an
	// event arriving with its budget already blown is rejected immediately,
	// not queued. Per-event budgets on the wire override it. 0 = unlimited.
	DeadlineSlots int

	// MaxQueue bounds the admission queue; arrivals past the bound are shed
	// ("queue-full"). 0 = unbounded.
	MaxQueue int

	// Capacity is the admission work-unit budget per epoch (arrivals cost
	// one unit; departures, moves, and faults are control traffic and are
	// free). The previous epoch's reaction cost (recordCost) is debited
	// first, so an expensive repair or re-solve shrinks the next epoch's
	// admission capacity — the mechanism that couples control-plane overload
	// to load shedding. 0 = unlimited.
	Capacity int

	// ResolveCost overrides DefaultResolveCost in the debt computation.
	ResolveCost int

	// Breaker and Ladder configure the circuit breaker and its degradation
	// ladder (wrapped around the daemon's policy when Breaker.Enabled).
	Breaker BreakerConfig
	Ladder  LadderConfig
}

func (c Config) resolveCost() int {
	if c.ResolveCost <= 0 {
		return DefaultResolveCost
	}
	return c.ResolveCost
}

// Stats is the engine's admission telemetry.
type Stats struct {
	// Frames counts every frame handled, retransmissions included; Events
	// counts unique event frames.
	Frames, Events int
	Admitted       int
	Duplicates     int
	ShedDeadline   int
	ShedQueue      int
	ShedOverload   int
	ShedFinished   int
	// LateAdmits counts events admitted after their slot; admission waits in
	// epochs feed WaitPercentile.
	LateAdmits int
	Epochs     int
}

// Shed totals the shed counters.
func (s Stats) Shed() int {
	return s.ShedDeadline + s.ShedQueue + s.ShedOverload + s.ShedFinished
}

type pendingEvent struct {
	seq    uint64
	budget int
	ev     serve.Event
}

// Engine is the deterministic core of the transport frontend: it consumes
// decoded frames (from a socket, the HTTP handler, or an in-process sweep),
// runs admission control, and drives a serve.Daemon. It is strictly
// single-threaded — the server serializes HandleFrame calls — so identical
// frame sequences produce identical daemons, records, and responses.
type Engine struct {
	cfg     Config
	daemon  *serve.Daemon
	breaker *Breaker
	guard   *GuardedPolicy

	started  bool
	finished bool
	runErr   error

	// Ordered-mode sequencing.
	nextSeq uint64
	held    map[uint64]Frame

	// Unordered-mode dedup and buffering.
	seen     map[uint64]struct{}
	buffered []pendingEvent

	debt     int // last epoch's reaction cost, debited from admission capacity
	stats    Stats
	waits    []int
	recorded serve.Script
	admitted map[uint64]struct{} // exactly-once audit, soclinvariants only
}

// NewEngine builds an idle engine; the session starts at the hello frame.
func NewEngine(cfg Config) *Engine {
	e := &Engine{
		cfg:  cfg,
		held: make(map[uint64]Frame),
		seen: make(map[uint64]struct{}),
	}
	if invariant.Enabled {
		e.admitted = make(map[uint64]struct{})
	}
	return e
}

// Accessors for tests and the in-process sweep.

// Stats snapshots the admission telemetry.
func (e *Engine) Stats() Stats { return e.stats }

// Result returns the daemon's run result (nil before hello).
func (e *Engine) Result() *serve.RunResult {
	if e.daemon == nil {
		return nil
	}
	return e.daemon.Result()
}

// RunErr reports a fatal daemon error, if any.
func (e *Engine) RunErr() error { return e.runErr }

// Finished reports whether the session saw its finish frame.
func (e *Engine) Finished() bool { return e.finished }

// Recorded returns the admitted event stream as a script: the events in
// admission order under the session's meta. In an ordered session with no
// sheds this equals the sent script event for event.
func (e *Engine) Recorded() *serve.Script { return &e.recorded }

// Guard returns the session's GuardedPolicy (nil when the breaker is off).
func (e *Engine) Guard() *GuardedPolicy { return e.guard }

// Breaker returns the session's breaker (nil when disabled).
func (e *Engine) Breaker() *Breaker { return e.breaker }

// WaitPercentile returns the q-quantile (q in [0,1]) of admission waits in
// epochs, 0 if nothing was admitted.
func (e *Engine) WaitPercentile(q float64) int {
	if len(e.waits) == 0 {
		return 0
	}
	s := append([]int(nil), e.waits...)
	sort.Ints(s)
	idx := int(q*float64(len(s)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// HandleFrame consumes one decoded frame and returns the response frames to
// write back. It never fails the session on malformed or unexpected frames —
// those earn an error ack — and a daemon error finishes the session with
// MsgError rather than panicking the server.
func (e *Engine) HandleFrame(fr Frame) []Frame {
	e.stats.Frames++
	if !e.cfg.Ordered {
		if _, dup := e.seen[fr.Seq]; dup {
			e.stats.Duplicates++
			return []Frame{ack(fr, StatusDuplicate, "")}
		}
		e.seen[fr.Seq] = struct{}{}
		return e.processFrame(fr)
	}
	// Ordered: process exactly in seq order, holding gaps for retransmits.
	if fr.Seq < e.nextSeq {
		e.stats.Duplicates++
		return []Frame{ack(fr, StatusDuplicate, "")}
	}
	if fr.Seq > e.nextSeq {
		if _, held := e.held[fr.Seq]; held {
			e.stats.Duplicates++
		} else if e.cfg.MaxQueue > 0 && len(e.held) >= 4*e.cfg.MaxQueue {
			// Hold-buffer bound: drop without acking; the client will
			// retransmit once the gap drains.
			return nil
		} else {
			e.held[fr.Seq] = cloneFrame(fr)
		}
		return []Frame{ack(fr, StatusDuplicate, "held")}
	}
	var out []Frame
	out = append(out, e.processFrame(fr)...)
	e.nextSeq++
	for {
		next, ok := e.held[e.nextSeq]
		if !ok {
			break
		}
		delete(e.held, e.nextSeq)
		out = append(out, e.processFrame(next)...)
		e.nextSeq++
	}
	return out
}

// cloneFrame copies a frame whose body may alias a caller-owned buffer.
func cloneFrame(fr Frame) Frame {
	fr.Body = append([]byte(nil), fr.Body...)
	return fr
}

func (e *Engine) processFrame(fr Frame) []Frame {
	switch fr.Type {
	case MsgHello:
		return e.handleHello(fr)
	case MsgEvent:
		return e.handleEvent(fr)
	case MsgTick:
		return e.handleTick(fr)
	case MsgFinish:
		return e.handleFinish(fr)
	default:
		// Ack/result/error are client-bound; a server receiving one ignores
		// it rather than failing the session.
		return nil
	}
}

func (e *Engine) handleHello(fr Frame) []Frame {
	if e.started {
		return []Frame{ack(fr, StatusOK, "session already started")}
	}
	if e.cfg.Factory == nil {
		return []Frame{errFrame(fr.Seq, "transport: no session factory configured")}
	}
	meta, err := serve.ParseMetaLine(string(fr.Body))
	if err != nil {
		return []Frame{errFrame(fr.Seq, fmt.Sprintf("bad hello meta: %v", err))}
	}
	sc, err := e.cfg.Factory(meta)
	if err != nil {
		return []Frame{errFrame(fr.Seq, fmt.Sprintf("session factory: %v", err))}
	}
	if e.cfg.Breaker.Enabled {
		inner := sc.Policy
		if inner == nil {
			thr := sc.ResolveThreshold
			//socllint:ignore floateq deliberate exact zero: the unset-field sentinel
			if thr == 0 {
				thr = serve.DefaultResolveThreshold
			}
			inner = serve.AutoPolicy{Threshold: thr}
		}
		e.breaker = NewBreaker(e.cfg.Breaker)
		e.guard = &GuardedPolicy{
			Inner:       inner,
			Breaker:     e.breaker,
			Ladder:      e.cfg.Ladder,
			ResolveCost: e.cfg.resolveCost(),
		}
		sc.Policy = e.guard
	}
	d, err := serve.NewDaemon(sc)
	if err != nil {
		return []Frame{errFrame(fr.Seq, fmt.Sprintf("daemon: %v", err))}
	}
	e.daemon = d
	e.recorded.Meta = meta
	e.started = true
	// The hello ack carries the admission discipline so clients can refuse
	// a doomed pairing (an open-loop client cannot fill an ordered server's
	// sequence gaps) instead of stalling until their timeout.
	mode := "unordered"
	if e.cfg.Ordered {
		mode = "ordered"
	}
	return []Frame{ack(fr, StatusOK, mode)}
}

func (e *Engine) handleEvent(fr Frame) []Frame {
	e.stats.Events++
	if !e.started {
		return []Frame{errFrame(fr.Seq, "event before hello")}
	}
	if e.finished {
		e.stats.ShedFinished++
		return []Frame{ack(fr, StatusShed, "finished")}
	}
	budget, line, err := ParseEventBody(fr.Body)
	if err != nil {
		return []Frame{errFrame(fr.Seq, err.Error())}
	}
	ev, err := serve.ParseEventLine(line)
	if err != nil {
		return []Frame{errFrame(fr.Seq, fmt.Sprintf("bad event line: %v", err))}
	}
	if budget == 0 {
		budget = e.cfg.DeadlineSlots
	}
	epoch := e.daemon.Epoch()
	// An event whose latency budget is already blown is rejected here, not
	// queued — the deadline-aware front door.
	if budget > 0 && epoch > ev.Slot+budget {
		e.stats.ShedDeadline++
		return []Frame{ack(fr, StatusShed, "deadline")}
	}
	if e.cfg.Ordered {
		// Reliable sessions admit inline: order is seq order by construction.
		return []Frame{e.admit(fr.Seq, ev, epoch)}
	}
	if e.cfg.MaxQueue > 0 && len(e.buffered) >= e.cfg.MaxQueue {
		e.stats.ShedQueue++
		return []Frame{ack(fr, StatusShed, "queue-full")}
	}
	// Ladder rung 3: while the breaker is open the system is degraded;
	// refuse new arrivals once the queue is half full rather than queueing
	// work the control plane cannot absorb. Control traffic still flows.
	if ev.Kind == serve.EvArrive && e.breaker != nil && e.breaker.State() == BreakerOpen &&
		e.cfg.MaxQueue > 0 && len(e.buffered) >= e.cfg.MaxQueue/2 {
		e.stats.ShedOverload++
		return []Frame{ack(fr, StatusShed, "overload")}
	}
	e.buffered = append(e.buffered, pendingEvent{seq: fr.Seq, budget: budget, ev: ev})
	// No ack yet: the disposition (admitted or shed) is reported when the
	// admission loop decides it. A retransmit meanwhile earns a duplicate
	// ack, which tells the client the frame is safely queued.
	return nil
}

// admit ingests one event into the daemon and the recorded stream.
func (e *Engine) admit(seq uint64, ev serve.Event, epoch int) Frame {
	if invariant.Enabled {
		_, dup := e.admitted[seq]
		invariant.Assertf(!dup, "transport: seq %d admitted twice", seq)
		e.admitted[seq] = struct{}{}
	}
	if wait := epoch - ev.Slot; wait > 0 {
		e.waits = append(e.waits, wait)
		e.stats.LateAdmits++
	} else {
		e.waits = append(e.waits, 0)
	}
	e.daemon.Ingest(ev)
	e.recorded.Events = append(e.recorded.Events, ev)
	e.stats.Admitted++
	return Frame{Type: MsgAck, Seq: seq, Body: AckBody(StatusAccepted, "")}
}

func (e *Engine) handleTick(fr Frame) []Frame {
	if !e.started {
		return []Frame{errFrame(fr.Seq, "tick before hello")}
	}
	target, err := ParseTickBody(fr.Body)
	if err != nil {
		return []Frame{errFrame(fr.Seq, err.Error())}
	}
	out := e.advanceTo(target)
	return append(out, ack(fr, StatusOK, ""))
}

func (e *Engine) handleFinish(fr Frame) []Frame {
	if !e.started {
		return []Frame{errFrame(fr.Seq, "finish before hello")}
	}
	var out []Frame
	if !e.finished {
		// Drain through the horizon: the script's slot count, or one past
		// the latest buffered event, whichever is later.
		horizon := e.recorded.Meta.NumSlots
		for i := range e.buffered {
			if s := e.buffered[i].ev.Slot + 1; s > horizon {
				horizon = s
			}
		}
		out = e.advanceTo(horizon)
		e.finished = true
		// Anything still buffered was starved past the horizon: shed it.
		for i := range e.buffered {
			e.stats.ShedDeadline++
			out = append(out, ack(Frame{Seq: e.buffered[i].seq}, StatusShed, "deadline"))
		}
		e.buffered = nil
	}
	if e.runErr != nil {
		return append(out, errFrame(fr.Seq, e.runErr.Error()))
	}
	return append(out, Frame{Type: MsgResult, Seq: fr.Seq, Body: []byte(e.Summary())})
}

// advanceTo ticks the daemon until its epoch reaches target, running the
// admission loop at each epoch boundary.
func (e *Engine) advanceTo(target int) []Frame {
	var out []Frame
	for e.runErr == nil && e.daemon.Epoch() < target {
		out = append(out, e.drainAdmit()...)
		rec, err := e.daemon.Tick()
		e.stats.Epochs++
		if err != nil {
			e.runErr = err
			out = append(out, errFrame(0, err.Error()))
			break
		}
		e.debt = recordCost(rec, e.cfg.resolveCost())
		if e.breaker != nil {
			e.breaker.OnEpoch()
		}
	}
	return out
}

// drainAdmit admits every due buffered event the epoch's capacity allows, in
// deterministic (slot, seq) order; due events that blew their budget waiting
// are shed. Unadmitted due events stay buffered and wait.
func (e *Engine) drainAdmit() []Frame {
	if len(e.buffered) == 0 {
		return nil
	}
	epoch := e.daemon.Epoch()
	units := e.cfg.Capacity - e.debt
	if units < 0 {
		units = 0
	}
	sort.SliceStable(e.buffered, func(i, j int) bool {
		if e.buffered[i].ev.Slot != e.buffered[j].ev.Slot {
			return e.buffered[i].ev.Slot < e.buffered[j].ev.Slot
		}
		return e.buffered[i].seq < e.buffered[j].seq
	})
	var out []Frame
	keep := e.buffered[:0]
	for _, p := range e.buffered {
		if p.ev.Slot > epoch {
			keep = append(keep, p)
			continue
		}
		if p.budget > 0 && epoch > p.ev.Slot+p.budget {
			e.stats.ShedDeadline++
			out = append(out, ack(Frame{Seq: p.seq}, StatusShed, "deadline"))
			continue
		}
		cost := 0
		if p.ev.Kind == serve.EvArrive {
			cost = 1
		}
		if e.cfg.Capacity > 0 && cost > 0 && units < cost {
			keep = append(keep, p) // starved: wait for a cheaper epoch
			continue
		}
		units -= cost
		out = append(out, e.admit(p.seq, p.ev, epoch))
	}
	e.buffered = keep
	return out
}

// Summary renders the session's one-line key=value report (the MsgResult
// body).
func (e *Engine) Summary() string {
	s := e.stats
	var b strings.Builder
	fmt.Fprintf(&b, "frames=%d events=%d admitted=%d dups=%d", s.Frames, s.Events, s.Admitted, s.Duplicates)
	fmt.Fprintf(&b, " shed_deadline=%d shed_queue=%d shed_overload=%d shed_finished=%d",
		s.ShedDeadline, s.ShedQueue, s.ShedOverload, s.ShedFinished)
	fmt.Fprintf(&b, " late=%d p99_wait=%d epochs=%d", s.LateAdmits, e.WaitPercentile(0.99), s.Epochs)
	if e.breaker != nil {
		fmt.Fprintf(&b, " breaker=%s trips=%d", e.breaker.State(), e.breaker.Trips())
	}
	if e.guard != nil {
		fmt.Fprintf(&b, " degraded_epochs=%d offload_epochs=%d", e.guard.DegradedEpochs, e.guard.OffloadEpochs)
	}
	if res := e.Result(); res != nil && res.Final != nil {
		fmt.Fprintf(&b, " final_unserved=%d", res.Final.Unserved())
	}
	if e.runErr != nil {
		fmt.Fprintf(&b, " err=%q", e.runErr.Error())
	}
	return b.String()
}

func ack(fr Frame, status byte, reason string) Frame {
	return Frame{Type: MsgAck, Seq: fr.Seq, Body: AckBody(status, reason)}
}

func errFrame(seq uint64, msg string) Frame {
	return Frame{Type: MsgError, Seq: seq, Body: []byte(msg)}
}
