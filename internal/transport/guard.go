package transport

import (
	"math"

	"repro/internal/model"
	"repro/internal/serve"
)

// DefaultResolveCost is the work-unit charge of a full re-solve relative to
// single repair moves (adds/evicts/rolled-back probes cost 1 each). It is the
// unit both the breaker's CostBudget and the engine's admission-capacity debt
// are denominated in.
const DefaultResolveCost = 50

// LadderConfig prices the graceful-degradation ladder a tripped breaker
// falls down: serve from the stale placement; if that leaves too many
// requests unserved, offload them to a pay-per-use cloud priced with a
// cold-start surcharge (the cloud function must spin up, model.ColdStartModel
// semantics); requests that not even the cloud can serve stay shed.
type LadderConfig struct {
	// OffloadThreshold is the unserved fraction of the stale serve above
	// which the cloud rung engages. 0 engages it on any unserved request.
	OffloadThreshold float64
	// CloudTransfer and CloudCompute price the offload rung
	// (model.CloudConfig). CloudCompute <= 0 disables the rung.
	CloudTransfer float64
	CloudCompute  float64
	// CloudColdStart is the per-offloaded-request latency surcharge in
	// seconds: every degraded-path offload is assumed to cold-start its
	// cloud function.
	CloudColdStart float64
}

func (l LadderConfig) hasCloud() bool { return l.CloudCompute > 0 }

// GuardedPolicy decorates a reaction policy with the circuit breaker and the
// degradation ladder. While the breaker admits reactions it is transparent:
// the inner policy serves and its cost/outcome trains the breaker. When the
// breaker is open — or the inner policy errors — the epoch is served from
// the ladder instead of failing the daemon, which is the whole point: under
// overload the control plane stops paying reaction costs, the admission
// capacity it was debiting recovers, and the frontend sheds less.
type GuardedPolicy struct {
	Inner   serve.Policy
	Breaker *Breaker
	Ladder  LadderConfig
	// ResolveCost overrides DefaultResolveCost (0 = default).
	ResolveCost int

	// Telemetry.
	DegradedEpochs int // epochs served by the ladder
	OffloadEpochs  int // ladder epochs where the cloud rung engaged
	InnerFailures  int // inner policy errors absorbed
	LastCost       int // work cost of the most recent reaction (0 on ladder)
}

// Name implements serve.Policy.
func (g *GuardedPolicy) Name() string { return "guarded(" + g.Inner.Name() + ")" }

func (g *GuardedPolicy) resolveCost() int {
	if g.ResolveCost <= 0 {
		return DefaultResolveCost
	}
	return g.ResolveCost
}

// Serve implements serve.Policy.
func (g *GuardedPolicy) Serve(ctx *serve.EpochContext) (serve.Outcome, error) {
	if g.Breaker.Allow() {
		out, err := g.Inner.Serve(ctx)
		if err == nil {
			g.LastCost = ReactionCost(&out, g.resolveCost())
			g.Breaker.Record(g.LastCost, false)
			return out, nil
		}
		// The inner reaction failed: train the breaker and fall to the
		// ladder instead of failing the epoch.
		g.InnerFailures++
		g.Breaker.Record(0, true)
	}
	g.LastCost = 0
	return g.degrade(ctx), nil
}

// degrade serves the epoch from the ladder: stale placement first, cloud
// offload if the stale serve leaves too much unserved.
func (g *GuardedPolicy) degrade(ctx *serve.EpochContext) serve.Outcome {
	g.DegradedEpochs++
	out, _ := serve.NonePolicy{}.Serve(ctx) // rung 1; NonePolicy cannot fail
	n := len(ctx.In.Workload.Requests)
	if n == 0 || !g.Ladder.hasCloud() {
		return out
	}
	if float64(out.Eval.Unserved()) <= g.Ladder.OffloadThreshold*float64(n) {
		return out
	}
	// Rung 2: re-evaluate the stale placement with the ladder's cloud
	// fallback priced in, cold-start surcharge on every offloaded request.
	cp := *ctx.In
	cp.Cloud = &model.CloudConfig{
		TransferCost: g.Ladder.CloudTransfer,
		Compute:      g.Ladder.CloudCompute,
	}
	ev := ctx.Mask.Instance(&cp).EvaluateRouted(out.Placement, ctx.Mode, ctx.Seed)
	if g.Ladder.CloudColdStart > 0 {
		surchargeCloud(&cp, ev, g.Ladder.CloudColdStart)
	}
	if ev.Unserved() < out.Eval.Unserved() {
		out.Eval = ev
		g.OffloadEpochs++
	}
	return out
}

// surchargeCloud adds the cold-start delay to every cloud-served request
// (nil route with finite latency) and re-derives the summary columns.
func surchargeCloud(in *model.Instance, ev *model.Evaluation, delay float64) {
	touched := 0
	for h := range ev.Latencies {
		if ev.Routes[h].Nodes != nil || math.IsInf(ev.Latencies[h], 1) {
			continue
		}
		ev.Latencies[h] += delay
		ev.LatencySum += delay
		touched++
	}
	if touched > 0 && !math.IsInf(ev.Objective, 1) {
		ev.Objective = in.Objective(ev.Cost, ev.LatencySum)
	}
}

// ReactionCost is the deterministic work charge of one reaction outcome: a
// full re-solve costs resolveCost units; an incremental repair costs one unit
// per committed add, per eviction, and per scored-then-reverted candidate.
func ReactionCost(out *serve.Outcome, resolveCost int) int {
	if out.Resolved {
		return resolveCost
	}
	return len(out.Added) + len(out.Evicted) + out.RolledBack
}

// recordCost is ReactionCost read off a finished epoch's record — the debt
// the engine charges against the next epoch's admission capacity. Steady
// delta-evaluator epochs ran no policy and cost nothing.
func recordCost(rec *serve.EpochRecord, resolveCost int) int {
	if rec.Incremental {
		return 0
	}
	if rec.Resolved {
		return resolveCost
	}
	return rec.Adds + rec.Evicts + rec.RolledBack
}
