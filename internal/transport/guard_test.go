package transport

import (
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/repair"
	"repro/internal/serve"
	"repro/internal/topology"
)

// failPolicy always errors — a reaction path that is down hard.
type failPolicy struct{}

func (failPolicy) Name() string { return "fail" }
func (failPolicy) Serve(*serve.EpochContext) (serve.Outcome, error) {
	return serve.Outcome{}, fmt.Errorf("reaction path down")
}

// ladderFixture: a single service deployed only on node 3, which has
// crashed. The stale placement serves nothing; only the ladder's cloud rung
// can save the request.
func ladderFixture(t *testing.T) *serve.EpochContext {
	t.Helper()
	g := topology.New(4)
	g.AddNode(0, 0, 10, 5)
	g.AddNode(1, 0, 10, 50)
	g.AddNode(-1, 0, 10, 50)
	g.AddNode(0, 1, 10, 50)
	for _, l := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}} {
		if err := g.AddLink(l[0], l[1], 2.0); err != nil {
			t.Fatal(err)
		}
	}
	g.Finalize()
	cat := msvc.NewCatalog()
	if _, err := cat.Add("svc", 10, 2, 10); err != nil {
		t.Fatal(err)
	}
	in := &model.Instance{
		Graph: g,
		Workload: &msvc.Workload{Catalog: cat, Requests: []msvc.Request{
			{ID: 0, Home: 0, Chain: []int{0}, DataIn: 0.5, DataOut: 0.25, Deadline: 1e9},
		}},
		Lambda: 0.5,
		Budget: 100,
	}
	p := model.NewPlacement(cat.Len(), g.N())
	p.Set(0, 3, true)
	m := chaos.NewMask(g)
	if err := m.Apply(chaos.Event{Kind: chaos.NodeCrash, Node: 3}); err != nil {
		t.Fatal(err)
	}
	return &serve.EpochContext{
		In:      in,
		Mask:    m,
		Planned: p,
		Mode:    model.RouteModeOptimal,
		Repair:  repair.DefaultConfig(),
	}
}

func TestGuardedLadderAbsorbsFailureAndOffloads(t *testing.T) {
	ctx := ladderFixture(t)
	cc := model.DefaultCloudConfig()
	g := &GuardedPolicy{
		Inner:   failPolicy{},
		Breaker: NewBreaker(BreakerConfig{Enabled: true, TripAfter: 1, Cooldown: 2}),
		Ladder: LadderConfig{
			CloudTransfer:  cc.TransferCost,
			CloudCompute:   cc.Compute,
			CloudColdStart: 0.5,
		},
	}
	out, err := g.Serve(ctx)
	if err != nil {
		t.Fatalf("guarded policy surfaced the inner failure: %v", err)
	}
	if g.InnerFailures != 1 || g.DegradedEpochs != 1 {
		t.Fatalf("failures=%d degraded=%d, want 1/1", g.InnerFailures, g.DegradedEpochs)
	}
	if g.Breaker.State() != BreakerOpen {
		t.Fatalf("breaker %v after TripAfter=1 failure, want open", g.Breaker.State())
	}
	// The only instance was on the crashed node: stale serve loses the
	// request, so the cloud rung must have engaged.
	if g.OffloadEpochs != 1 {
		t.Fatalf("offload epochs = %d, want 1", g.OffloadEpochs)
	}
	if out.Eval.Unserved() != 0 || out.Eval.CloudServed != 1 {
		t.Fatalf("unserved=%d cloudServed=%d, want 0/1", out.Eval.Unserved(), out.Eval.CloudServed)
	}

	// Without the surcharge the same offload is cheaper: the 0.5 cold-start
	// penalty must be visible in the served latency.
	g2 := &GuardedPolicy{
		Inner:   failPolicy{},
		Breaker: NewBreaker(BreakerConfig{Enabled: true, TripAfter: 1}),
		Ladder: LadderConfig{
			CloudTransfer: cc.TransferCost,
			CloudCompute:  cc.Compute,
		},
	}
	out2, err := g2.Serve(ladderFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if diff := out.Eval.Latencies[0] - out2.Eval.Latencies[0]; diff < 0.499 || diff > 0.501 {
		t.Fatalf("cold-start surcharge = %v, want 0.5", diff)
	}

	// Breaker open: the next epoch goes straight to the ladder without
	// touching the inner policy.
	if _, err := g.Serve(ctx); err != nil {
		t.Fatal(err)
	}
	if g.InnerFailures != 1 {
		t.Fatalf("open breaker still ran the inner policy (failures=%d)", g.InnerFailures)
	}
	if g.DegradedEpochs != 2 {
		t.Fatalf("degraded epochs = %d, want 2", g.DegradedEpochs)
	}
}

func TestGuardedTransparentWhenHealthy(t *testing.T) {
	ctx := ladderFixture(t)
	g := &GuardedPolicy{
		Inner:   serve.NonePolicy{},
		Breaker: NewBreaker(BreakerConfig{Enabled: true, TripAfter: 3}),
	}
	want, _ := serve.NonePolicy{}.Serve(ctx)
	got, err := g.Serve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Eval.Unserved() != want.Eval.Unserved() || got.Eval.Cost != want.Eval.Cost {
		t.Fatal("guarded policy altered a healthy inner outcome")
	}
	if g.DegradedEpochs != 0 || g.Breaker.State() != BreakerClosed {
		t.Fatalf("healthy serve degraded (degraded=%d state=%v)", g.DegradedEpochs, g.Breaker.State())
	}
}

func TestReactionCost(t *testing.T) {
	out := &serve.Outcome{
		Added:      []chaos.Inst{{Svc: 0, Node: 1}},
		Evicted:    []chaos.Inst{{Svc: 0, Node: 2}},
		RolledBack: 3,
	}
	if c := ReactionCost(out, 50); c != 5 {
		t.Fatalf("repair cost = %d, want 5", c)
	}
	if c := ReactionCost(&serve.Outcome{Resolved: true}, 50); c != 50 {
		t.Fatalf("resolve cost = %d, want 50", c)
	}
}
