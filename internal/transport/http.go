package transport

import (
	"bufio"
	"errors"
	"io"
	"net/http"
	"sync"
)

// HTTPFrontend adapts the engine to a loopback-HTTP surface: the same frames,
// batched in request/response bodies instead of a socket stream. It exists
// for environments where a raw socket is awkward (port-forwarded debugging,
// curl-able smoke checks); the wire format and admission semantics are
// identical to the socket server's.
//
//	POST /v1/frames   body: length-prefixed frames → body: response frames
//	GET  /v1/summary  current session summary (text)
type HTTPFrontend struct {
	cfg Config

	mu     sync.Mutex
	engine *Engine
}

// NewHTTPFrontend builds the handler with an idle engine.
func NewHTTPFrontend(cfg Config) *HTTPFrontend {
	return &HTTPFrontend{cfg: cfg, engine: NewEngine(cfg)}
}

// Engine returns the current session engine; quiesce requests first.
func (h *HTTPFrontend) Engine() *Engine {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.engine
}

// SessionDone reports whether the current session has finished. Safe to call
// concurrently with request handling (unlike Engine).
func (h *HTTPFrontend) SessionDone() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.engine.Finished()
}

// ServeHTTP implements http.Handler.
func (h *HTTPFrontend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/frames":
		h.serveFrames(w, r)
	case r.Method == http.MethodGet && r.URL.Path == "/v1/summary":
		h.mu.Lock()
		sum := h.engine.Summary()
		h.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, sum+"\n")
	default:
		http.NotFound(w, r)
	}
}

func (h *HTTPFrontend) serveFrames(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReader(http.MaxBytesReader(w, r.Body, 8*MaxFrame))
	var out []byte
	h.mu.Lock()
	for {
		fr, err := ReadFrame(br)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			h.mu.Unlock()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if fr.Type == MsgHello && h.engine.Finished() {
			h.engine = NewEngine(h.cfg)
		}
		for _, resp := range h.engine.HandleFrame(fr) {
			out = append(out, Encode(resp)...)
		}
	}
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out)
}
