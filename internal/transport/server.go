package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Server accepts framed connections on a unix socket or loopback TCP
// listener and feeds them to one shared Engine. The engine is strictly
// serialized under a mutex — connections are concurrent, admissions are not —
// so a server session is as deterministic as the order frames win the lock.
// Reliable clients make that order the sequence order; open-loop clients are
// measuring overload, where arrival order is the experiment.
type Server struct {
	cfg Config

	ln net.Listener

	mu     sync.Mutex
	engine *Engine

	wg        sync.WaitGroup
	closeOnce sync.Once
	closed    chan struct{}
	closeErr  error
}

// Listen binds a server. network is "unix" or "tcp" (keep tcp on loopback:
// the protocol has no auth).
func Listen(network, addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s %s: %w", network, addr, err)
	}
	return &Server{cfg: cfg, ln: ln, engine: NewEngine(cfg), closed: make(chan struct{})}, nil
}

// Addr returns the bound address (useful with "tcp 127.0.0.1:0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Engine returns the current session engine. Only read it after Close (or
// otherwise quiescing the accept loop): connection goroutines mutate it.
func (s *Server) Engine() *Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine
}

// SessionDone reports whether the current session has finished. Safe to call
// concurrently with connection handling (unlike Engine).
func (s *Server) SessionDone() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.Finished()
}

// Serve accepts connections until Close. It returns nil on a close-triggered
// shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64*1024)
	bw := bufio.NewWriterSize(conn, 64*1024)
	for {
		fr, err := ReadFrame(br)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				// Best-effort decode diagnostic; the conn dies either way.
				bw.Write(Encode(errFrame(0, err.Error())))
				bw.Flush()
			}
			return
		}
		s.mu.Lock()
		if fr.Type == MsgHello && s.engine.Finished() {
			// A hello after a finished session starts a fresh one.
			s.engine = NewEngine(s.cfg)
		}
		resps := s.engine.HandleFrame(fr)
		s.mu.Unlock()
		for i := range resps {
			if _, err := bw.Write(Encode(resps[i])); err != nil {
				return
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// Close shuts the listener and waits for every connection goroutine to
// drain, after which Engine() is safe to inspect.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.closeErr = s.ln.Close()
		s.wg.Wait()
	})
	return s.closeErr
}
