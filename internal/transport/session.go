package transport

import (
	"bufio"
	"bytes"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/serve"
)

// BuildSession renders a script as the canonical frame sequence a client
// sends: hello, then per slot the slot's events followed by a tick to the
// next epoch, then finish. Sequence numbers are assigned in order from 0.
// budgetSlots stamps every event's deadline budget (0 defers to the server
// default).
func BuildSession(s *serve.Script, budgetSlots int) ([]Frame, error) {
	var frames []Frame
	seq := uint64(0)
	add := func(t byte, body []byte) {
		frames = append(frames, Frame{Type: t, Seq: seq, Body: body})
		seq++
	}
	add(MsgHello, []byte(serve.FormatMeta(s.Meta)))
	maxSlot := s.Meta.NumSlots - 1
	for i := range s.Events {
		if s.Events[i].Slot > maxSlot {
			maxSlot = s.Events[i].Slot
		}
	}
	for slot := 0; slot <= maxSlot; slot++ {
		for i := range s.Events {
			if s.Events[i].Slot != slot {
				continue
			}
			line, err := serve.FormatEvent(&s.Events[i])
			if err != nil {
				return nil, fmt.Errorf("transport: event %d: %w", i, err)
			}
			add(MsgEvent, EventBody(budgetSlots, line))
		}
		add(MsgTick, TickBody(slot+1))
	}
	add(MsgFinish, nil)
	return frames, nil
}

// PlaySession drives a frame sequence through a fresh engine in process,
// optionally through a chaos link: event frames pass the impaired link
// (drops, duplicates, reordering), control frames are delivered reliably
// with held frames flushed first — the same discipline the open-loop socket
// client uses, so in-process sweeps and wire runs see the same stream. The
// encoded-then-decoded round trip is intentional: the sweep exercises the
// real codec.
func PlaySession(cfg Config, frames []Frame, lcfg *chaos.LinkConfig) (*Engine, error) {
	eng := NewEngine(cfg)
	feed := func(b []byte) error {
		fr, err := ReadFrame(bufio.NewReader(bytes.NewReader(b)))
		if err != nil {
			return err
		}
		eng.HandleFrame(fr)
		return nil
	}
	var link *chaos.Link
	if lcfg != nil {
		link = chaos.NewLink(*lcfg, feed)
	}
	for i := range frames {
		if link != nil && frames[i].Type == MsgEvent {
			if err := link.Send(Encode(frames[i])); err != nil {
				return eng, err
			}
			continue
		}
		if link != nil {
			if err := link.Flush(); err != nil {
				return eng, err
			}
		}
		if err := feed(Encode(frames[i])); err != nil {
			return eng, err
		}
	}
	if link != nil {
		if err := link.Flush(); err != nil {
			return eng, err
		}
	}
	return eng, nil
}
