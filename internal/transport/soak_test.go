package transport_test

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/msvc"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/transport"
)

// soakStream builds a small faulted scenario and its event stream.
func soakStream(t *testing.T, nodes, users, slots int, seed int64) (sim.Config, *serve.Script) {
	t.Helper()
	g := topology.RandomGeometric(nodes, 0.4, topology.DefaultGenConfig(), seed)
	cat := msvc.EShopCatalog(msvc.DefaultDatasetConfig(), seed)
	cfg := sim.DefaultConfig(g, cat, users, seed)
	cfg.DurationMinutes = float64(slots) * cfg.SlotMinutes
	scfg := chaos.DefaultScheduleConfig()
	scfg.NodeFailProb = 0.15
	scfg.LinkFailProb = 0.15
	scfg.StorageShrinkProb = 0.075
	scfg.MinNodesUp = nodes / 2
	cfg.Faults = chaos.Generate(g, slots, scfg, seed)
	cfg.Policy = sim.PolicyRepair
	s, err := sim.EventStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Meta.Radius = 0.4
	s.Meta.TopoSeed = seed
	s.Meta.CatSeed = seed
	return cfg, s
}

// sameStream asserts two scripts carry the same events in the same
// slot-grouped order (the canonical session order).
func sameStream(t *testing.T, want, got *serve.Script) {
	t.Helper()
	fa, err := transport.BuildSession(want, 0)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := transport.BuildSession(got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fa) != len(fb) {
		t.Fatalf("session lengths differ: %d vs %d frames", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i].Type != fb[i].Type || !bytes.Equal(fa[i].Body, fb[i].Body) {
			t.Fatalf("session frame %d differs:\n  sent %q\n  recorded %q", i, fa[i].Body, fb[i].Body)
		}
	}
}

// checkGoroutines asserts the goroutine count returns to the baseline after
// every server and client has shut down.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSoakReliableChaos is the transport soak: a chaos-impaired reliable
// session over a real loopback socket must (1) admit every event exactly
// once, in order — the recorded stream equals the sent script; (2) replay
// bitwise against the batch simulator; (3) leak no goroutines.
func TestSoakReliableChaos(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg, s := soakStream(t, 10, 8, 8, 3)
	res, err := sim.Run(cfg, sim.NewSoCLOnline(core.DefaultConfig()))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := transport.Listen("tcp", "127.0.0.1:0", transport.Config{
		Factory: func(serve.Meta) (serve.Config, error) {
			return sim.ReplayConfig(cfg, sim.NewSoCLOnline(core.DefaultConfig())), nil
		},
		Ordered: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	cli, err := transport.Dial("tcp", srv.Addr().String(), transport.ClientConfig{
		Reliable: true,
		Seed:     3,
		Chaos: &chaos.LinkConfig{
			Seed:  stats.SplitSeed(3, "transport/chaos"),
			Drop:  0.20,
			Dup:   0.10,
			Delay: 0.10,
		},
	})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	rep, err := cli.Run(s)
	cli.Close()
	srv.Close()
	if err != nil {
		t.Fatalf("reliable session failed: %v (report %+v)", err, rep)
	}
	eng := srv.Engine()
	if !eng.Finished() || eng.RunErr() != nil {
		t.Fatalf("session not finished cleanly: finished=%v err=%v", eng.Finished(), eng.RunErr())
	}
	st := eng.Stats()
	if st.Admitted != len(s.Events) || st.Shed() != 0 {
		t.Fatalf("admitted %d/%d, shed %d — reliable session must admit everything exactly once",
			st.Admitted, len(s.Events), st.Shed())
	}
	if rep.Link.Dropped == 0 {
		t.Fatal("chaos injected no drops — the soak exercised nothing")
	}
	if rep.Retransmits == 0 {
		t.Fatal("no retransmissions despite drops")
	}
	sameStream(t, s, eng.Recorded())
	if err := sim.CompareReplay(res, eng.Result()); err != nil {
		t.Fatalf("wire replay diverged from sim.Run: %v", err)
	}
	checkGoroutines(t, before)
}

// TestSoakOpenLoopHardened drives the shedding regime: unordered admission
// with deadlines, a bounded queue, capacity debt, and the breaker. The
// session must finish without a daemon error and account for every received
// event as either admitted or shed.
func TestSoakOpenLoopHardened(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg, s := soakStream(t, 10, 8, 8, 5)
	cc := model.DefaultCloudConfig()
	srv, err := transport.Listen("tcp", "127.0.0.1:0", transport.Config{
		Factory: func(serve.Meta) (serve.Config, error) {
			sc := sim.ReplayConfig(cfg, sim.NewSoCLOnline(core.DefaultConfig()))
			sc.Replan = false
			sc.Policy = nil // default AutoPolicy, wrapped by the guard
			return sc, nil
		},
		Ordered:       false,
		DeadlineSlots: 1,
		MaxQueue:      32,
		Capacity:      8,
		Breaker:       transport.BreakerConfig{Enabled: true, TripAfter: 2, Cooldown: 2, CostBudget: 40},
		Ladder: transport.LadderConfig{
			CloudTransfer:  cc.TransferCost,
			CloudCompute:   cc.Compute,
			CloudColdStart: 0.25,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	cli, err := transport.Dial("tcp", srv.Addr().String(), transport.ClientConfig{
		Reliable: false,
		Seed:     5,
		Chaos: &chaos.LinkConfig{
			Seed:  stats.SplitSeed(5, "transport/chaos"),
			Drop:  0.30,
			Dup:   0.10,
			Delay: 0.15,
		},
	})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	rep, err := cli.Run(s)
	cli.Close()
	srv.Close()
	if err != nil {
		t.Fatalf("open-loop session failed: %v (report %+v)", err, rep)
	}
	eng := srv.Engine()
	if !eng.Finished() || eng.RunErr() != nil {
		t.Fatalf("session not finished cleanly: finished=%v err=%v", eng.Finished(), eng.RunErr())
	}
	st := eng.Stats()
	if st.Admitted+st.Shed() != st.Events {
		t.Fatalf("event accounting broken: admitted %d + shed %d != received %d",
			st.Admitted, st.Shed(), st.Events)
	}
	if st.Admitted == 0 {
		t.Fatal("open-loop session admitted nothing")
	}
	checkGoroutines(t, before)
}

// TestPlaySessionDeterministic pins the in-process path: identical frames,
// chaos, and engine config must produce identical stats, records, and
// summaries — the property the ext_overload sweep rests on.
func TestPlaySessionDeterministic(t *testing.T) {
	cfg, s := soakStream(t, 8, 6, 6, 7)
	frames, err := transport.BuildSession(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *transport.Engine {
		eng, err := transport.PlaySession(transport.Config{
			Factory: func(serve.Meta) (serve.Config, error) {
				sc := sim.ReplayConfig(cfg, sim.NewSoCLOnline(core.DefaultConfig()))
				sc.Replan = false
				sc.Policy = nil
				return sc, nil
			},
			Ordered:       false,
			DeadlineSlots: 1,
			MaxQueue:      16,
			Capacity:      6,
			Breaker:       transport.BreakerConfig{Enabled: true, TripAfter: 2, CostBudget: 30},
		}, frames, &chaos.LinkConfig{Seed: 42, Drop: 0.25, Dup: 0.10, Delay: 0.20})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	a, b := run(), run()
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverge:\n  %+v\n  %+v", a.Stats(), b.Stats())
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("summaries diverge:\n  %s\n  %s", a.Summary(), b.Summary())
	}
	var ba, bb bytes.Buffer
	if err := serve.WriteScript(&ba, a.Recorded()); err != nil {
		t.Fatal(err)
	}
	if err := serve.WriteScript(&bb, b.Recorded()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("recorded streams diverge between identical runs")
	}
}

// TestHTTPFrontend pushes a full session through the loopback-HTTP surface.
func TestHTTPFrontend(t *testing.T) {
	cfg, s := soakStream(t, 8, 6, 6, 9)
	frames, err := transport.BuildSession(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	fe := transport.NewHTTPFrontend(transport.Config{
		Factory: func(serve.Meta) (serve.Config, error) {
			return sim.ReplayConfig(cfg, sim.NewSoCLOnline(core.DefaultConfig())), nil
		},
		Ordered: true,
	})
	hs := httptest.NewServer(fe)
	defer hs.Close()
	var body bytes.Buffer
	for i := range frames {
		body.Write(transport.Encode(frames[i]))
	}
	resp, err := http.Post(hs.URL+"/v1/frames", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/frames: %s", resp.Status)
	}
	eng := fe.Engine()
	if !eng.Finished() || eng.RunErr() != nil {
		t.Fatalf("HTTP session not finished: finished=%v err=%v", eng.Finished(), eng.RunErr())
	}
	if st := eng.Stats(); st.Admitted != len(s.Events) {
		t.Fatalf("HTTP session admitted %d/%d", st.Admitted, len(s.Events))
	}
	sum, err := http.Get(hs.URL + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	sum.Body.Close()
	if sum.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/summary: %s", sum.Status)
	}
}
