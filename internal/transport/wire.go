// Package transport is the serving daemon's overload-hardened frontend: a
// framed wire protocol over unix sockets, loopback TCP, or loopback HTTP that
// replaces script playback with a live request path. It comprises
//
//   - a framed wire codec (this file) carrying the exact per-event text
//     encoding scripts use (serve.FormatEvent), length-prefixed and
//     fuzz-safe: arbitrary bytes decode to an error, never a panic, and
//     frames are bounded so a hostile peer cannot force allocation;
//   - a deterministic admission engine (engine.go): bounded queues,
//     per-event deadline budgets in slots — an event whose budget is already
//     blown is rejected, not queued — and a per-epoch work-unit capacity
//     model that charges the previous epoch's reaction cost against the next
//     epoch's admission capacity, so an expensive control plane sheds load
//     exactly like a saturated server would;
//   - a circuit breaker around the solver/repair reaction path (breaker.go)
//     feeding a graceful-degradation ladder (guard.go): serve from the stale
//     placement, then offload to the pay-per-use cloud priced with the
//     model.ColdStartModel surcharge, then shed;
//   - a socket server (server.go), a loopback-HTTP frontend (http.go), and a
//     client with capped exponential backoff + seeded jitter retries
//     (client.go), deterministic under stats.SplitSeed("transport/retry").
//
// Sessions run in two disciplines. Ordered (reliable) sessions admit frames
// strictly in sequence-number order — chaos-injected drops, duplicates, and
// reorderings (chaos.Link) are fully masked by retransmission and dedup, the
// recorded serve.Script equals the sent one event for event, and a
// replay-mode session reproduces sim.Run bitwise. Unordered (shed) sessions
// admit frames as they arrive: a dropped frame's retransmit can land after
// its slot's deadline budget and is shed, which is the regime the
// ext_overload sweep measures. Either way every admitted event enters the
// recorded stream exactly once (sequence-number dedup, asserted under the
// soclinvariants tag).
package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds one frame's payload so a hostile length prefix cannot
// force allocation. Event lines are well under 1 KiB; 1 MiB leaves room for
// batched extensions.
const MaxFrame = 1 << 20

// Message types. The zero value is invalid so an all-zero frame fails to
// parse.
const (
	// MsgHello opens a session; the body is the script meta line
	// (serve.FormatMeta) the server rebuilds the scenario from.
	MsgHello = byte(iota + 1)
	// MsgEvent carries one event; the body is a uvarint deadline budget in
	// slots (0 = server default) followed by the event's script line.
	MsgEvent
	// MsgTick advances the daemon; the body is a uvarint target epoch.
	// Target epochs are monotonic: a tick at or below the current epoch is a
	// no-op, so duplicated or dropped ticks are absorbed by later ones.
	MsgTick
	// MsgFinish ends the session: the server drains the queue through the
	// script horizon and answers with MsgResult.
	MsgFinish
	// MsgAck is the server's per-frame disposition (body: status byte +
	// reason text).
	MsgAck
	// MsgResult carries the session summary as a key=value text line.
	MsgResult
	// MsgError reports a fatal session error (body: message).
	MsgError
)

// maxMsg is the highest valid message type.
const maxMsg = MsgError

// Ack statuses.
const (
	// StatusAccepted: the event was admitted into the daemon's stream.
	StatusAccepted = byte(iota + 1)
	// StatusShed: the event was rejected; the reason text says why
	// ("deadline", "queue-full", "overload", "finished").
	StatusShed
	// StatusDuplicate: the frame's sequence number was already seen; the
	// original disposition stands.
	StatusDuplicate
	// StatusOK acknowledges non-event frames (hello, tick, finish).
	StatusOK
)

// Frame is one decoded protocol frame. Seq orders and dedups frames within a
// session; Attempt distinguishes retransmissions of the same frame on the
// wire (chaos decisions are drawn per attempt) and is ignored by the
// receiver's dedup.
type Frame struct {
	Type    byte
	Seq     uint64
	Attempt uint64
	Body    []byte
}

// Encode renders the frame with its length prefix, ready for the wire.
func Encode(f Frame) []byte {
	payload := make([]byte, 0, 1+2*binary.MaxVarintLen64+len(f.Body))
	payload = append(payload, f.Type)
	payload = binary.AppendUvarint(payload, f.Seq)
	payload = binary.AppendUvarint(payload, f.Attempt)
	payload = append(payload, f.Body...)
	out := make([]byte, 0, binary.MaxVarintLen64+len(payload))
	out = binary.AppendUvarint(out, uint64(len(payload)))
	return append(out, payload...)
}

// ParsePayload decodes a frame payload (the bytes after the length prefix).
// Malformed input returns an error, never panics.
func ParsePayload(p []byte) (Frame, error) {
	if len(p) == 0 {
		return Frame{}, fmt.Errorf("transport: empty frame")
	}
	if len(p) > MaxFrame {
		return Frame{}, fmt.Errorf("transport: frame payload %d exceeds MaxFrame", len(p))
	}
	f := Frame{Type: p[0]}
	if f.Type < MsgHello || f.Type > maxMsg {
		return Frame{}, fmt.Errorf("transport: unknown message type %d", f.Type)
	}
	rest := p[1:]
	var n int
	f.Seq, n = binary.Uvarint(rest)
	if n <= 0 {
		return Frame{}, fmt.Errorf("transport: bad seq varint")
	}
	rest = rest[n:]
	f.Attempt, n = binary.Uvarint(rest)
	if n <= 0 {
		return Frame{}, fmt.Errorf("transport: bad attempt varint")
	}
	f.Body = rest[n:]
	return f, nil
}

// ReadFrame decodes the next length-prefixed frame from the stream. A length
// prefix beyond MaxFrame is rejected before any allocation.
func ReadFrame(br *bufio.Reader) (Frame, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return Frame{}, err
	}
	if n == 0 || n > MaxFrame {
		return Frame{}, fmt.Errorf("transport: frame length %d out of range (max %d)", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Frame{}, fmt.Errorf("transport: short frame: %w", err)
	}
	return ParsePayload(payload)
}

// EventBody renders a MsgEvent body: the deadline budget followed by the
// event's script line.
func EventBody(budgetSlots int, line string) []byte {
	b := binary.AppendUvarint(nil, uint64(budgetSlots))
	return append(b, line...)
}

// ParseEventBody splits a MsgEvent body into its budget and line.
func ParseEventBody(body []byte) (budgetSlots int, line string, err error) {
	v, n := binary.Uvarint(body)
	if n <= 0 {
		return 0, "", fmt.Errorf("transport: bad event budget varint")
	}
	if v > 1<<31 {
		return 0, "", fmt.Errorf("transport: event budget %d out of range", v)
	}
	return int(v), string(body[n:]), nil
}

// TickBody renders a MsgTick body.
func TickBody(target int) []byte {
	return binary.AppendUvarint(nil, uint64(target))
}

// ParseTickBody decodes a MsgTick body.
func ParseTickBody(body []byte) (int, error) {
	v, n := binary.Uvarint(body)
	if n <= 0 || n != len(body) {
		return 0, fmt.Errorf("transport: bad tick body")
	}
	if v > 1<<31 {
		return 0, fmt.Errorf("transport: tick target %d out of range", v)
	}
	return int(v), nil
}

// AckBody renders a MsgAck body.
func AckBody(status byte, reason string) []byte {
	return append([]byte{status}, reason...)
}

// ParseAckBody decodes a MsgAck body.
func ParseAckBody(body []byte) (status byte, reason string, err error) {
	if len(body) == 0 {
		return 0, "", fmt.Errorf("transport: empty ack body")
	}
	if body[0] < StatusAccepted || body[0] > StatusOK {
		return 0, "", fmt.Errorf("transport: unknown ack status %d", body[0])
	}
	return body[0], string(body[1:]), nil
}
