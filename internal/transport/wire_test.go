package transport

import (
	"bufio"
	"bytes"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: MsgHello, Seq: 0, Body: []byte("meta nodes=4")},
		{Type: MsgEvent, Seq: 7, Attempt: 3, Body: EventBody(2, "depart 1 0")},
		{Type: MsgTick, Seq: 8, Body: TickBody(12)},
		{Type: MsgFinish, Seq: 9},
		{Type: MsgAck, Seq: 7, Body: AckBody(StatusShed, "deadline")},
		{Type: MsgResult, Seq: 9, Body: []byte("admitted=3")},
		{Type: MsgError, Seq: 0, Body: []byte("boom")},
	}
	var wire bytes.Buffer
	for _, f := range frames {
		wire.Write(Encode(f))
	}
	br := bufio.NewReader(&wire)
	for i, want := range frames {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || got.Attempt != want.Attempt ||
			!bytes.Equal(got.Body, want.Body) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(br); err == nil {
		t.Fatal("expected EOF after last frame")
	}
}

func TestEventBodyRoundTrip(t *testing.T) {
	b := EventBody(5, "arrive 0 0 2 0x1p-03 0x1p-04 0x1.4p+03 0,1 0x1p-05")
	budget, line, err := ParseEventBody(b)
	if err != nil || budget != 5 || line != "arrive 0 0 2 0x1p-03 0x1p-04 0x1.4p+03 0,1 0x1p-05" {
		t.Fatalf("got (%d, %q, %v)", budget, line, err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var wire bytes.Buffer
	// A length prefix claiming 100 MB must be rejected before allocation.
	wire.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x40})
	if _, err := ReadFrame(bufio.NewReader(&wire)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// FuzzParsePayload is the decoder-hardening target: arbitrary bytes either
// decode into a frame that re-encodes to an equivalent payload, or error —
// never panic.
func FuzzParsePayload(f *testing.F) {
	f.Add(Encode(Frame{Type: MsgHello, Body: []byte("meta nodes=2")})[1:])
	f.Add(Encode(Frame{Type: MsgEvent, Seq: 1, Body: EventBody(0, "depart 0 1")})[1:])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Add([]byte{MsgTick, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ParsePayload(data)
		if err != nil {
			return
		}
		enc := Encode(fr)
		fr2, err := ReadFrame(bufio.NewReader(bytes.NewReader(enc)))
		if err != nil {
			t.Fatalf("re-decode of encoded frame failed: %v", err)
		}
		if fr2.Type != fr.Type || fr2.Seq != fr.Seq || fr2.Attempt != fr.Attempt ||
			!bytes.Equal(fr2.Body, fr.Body) {
			t.Fatalf("frame not stable: %+v vs %+v", fr, fr2)
		}
	})
}
