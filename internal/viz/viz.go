// Package viz renders experiment results as standalone SVG charts using
// only the standard library, so the figure harness can emit plot files next
// to its CSV tables (soclbench -svg). Line charts (optionally log-scale y,
// for the paper's runtime plots) and grouped bar charts (for the objective
// comparisons) cover every figure shape in the paper.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line or bar group.
type Series struct {
	Name string
	X    []float64 // ignored by bar charts (labels index instead)
	Y    []float64
}

// palette holds the series colors (colorblind-safe-ish defaults).
var palette = []string{"#1b6ca8", "#d1495b", "#66a182", "#edae49", "#8d5a97", "#555555"}

const (
	width   = 640
	height  = 400
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 55
)

// LineChart renders series as polylines. logY switches the y axis to log10
// (non-positive values are clamped to the smallest positive y).
func LineChart(title, xLabel, yLabel string, series []Series, logY bool) string {
	var b strings.Builder
	header(&b, title)

	// Data ranges.
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	minPos := math.Inf(1)
	for _, s := range series {
		for i := range s.X {
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			y := s.Y[i]
			if y > 0 {
				minPos = math.Min(minPos, y)
			}
			yMin = math.Min(yMin, y)
			yMax = math.Max(yMax, y)
		}
	}
	if math.IsInf(xMin, 1) { // no data
		b.WriteString("</svg>\n")
		return b.String()
	}
	ty := func(y float64) float64 { return y }
	if logY {
		if math.IsInf(minPos, 1) {
			minPos = 1e-6
		}
		ty = func(y float64) float64 {
			if y <= 0 {
				y = minPos
			}
			return math.Log10(y)
		}
		yMin, yMax = ty(math.Max(yMin, minPos)), ty(yMax)
	}
	//socllint:ignore floateq degenerate-range guard: equal extrema would divide by zero either way
	if xMax == xMin {
		xMax = xMin + 1
	}
	//socllint:ignore floateq degenerate-range guard: equal extrema would divide by zero either way
	if yMax == yMin {
		yMax = yMin + 1
	}
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	px := func(x float64) float64 { return marginL + (x-xMin)/(xMax-xMin)*plotW }
	py := func(y float64) float64 { return float64(height-marginB) - (ty(y)-yMin)/(yMax-yMin)*plotH }

	axes(&b, xLabel, yLabel)
	// y ticks: 5 evenly spaced (in transformed space).
	for i := 0; i <= 4; i++ {
		v := yMin + (yMax-yMin)*float64(i)/4
		label := v
		if logY {
			label = math.Pow(10, v)
		}
		y := float64(height-marginB) - float64(i)/4*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, width-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, fmtTick(label))
	}
	// x ticks at each distinct x.
	xs := distinctX(series)
	for _, x := range xs {
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px(x), height-marginB+18, fmtTick(x))
	}

	for si, s := range series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				px(s.X[i]), py(s.Y[i]), color)
		}
		legend(&b, si, s.Name, color)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// GroupedBarChart renders one bar per (label, series) pair, grouped by
// label.
func GroupedBarChart(title, yLabel string, labels []string, series []Series) string {
	var b strings.Builder
	header(&b, title)
	yMax := 0.0
	for _, s := range series {
		for _, y := range s.Y {
			yMax = math.Max(yMax, y)
		}
	}
	//socllint:ignore floateq exact zero: yMax starts at 0 and only ever increases by max()
	if yMax == 0 {
		yMax = 1
	}
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	groupW := plotW / float64(len(labels))
	barW := groupW / float64(len(series)+1)

	axes(&b, "", yLabel)
	for i := 0; i <= 4; i++ {
		v := yMax * float64(i) / 4
		y := float64(height-marginB) - float64(i)/4*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, y, width-marginR, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, y+4, fmtTick(v))
	}
	for li, label := range labels {
		gx := marginL + float64(li)*groupW
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			gx+groupW/2, height-marginB+18, xmlEscape(label))
		for si, s := range series {
			if li >= len(s.Y) {
				continue
			}
			h := s.Y[li] / yMax * plotH
			x := gx + barW/2 + float64(si)*barW
			y := float64(height-marginB) - h
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW*0.9, h, palette[si%len(palette)])
		}
	}
	for si, s := range series {
		legend(&b, si, s.Name, palette[si%len(palette)])
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func header(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(b, `<text x="%d" y="22" font-size="14" text-anchor="middle" font-weight="bold">%s</text>`+"\n",
		width/2, xmlEscape(title))
}

func axes(b *strings.Builder, xLabel, yLabel string) {
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	if xLabel != "" {
		fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			(marginL+width-marginR)/2, height-12, xmlEscape(xLabel))
	}
	if yLabel != "" {
		fmt.Fprintf(b, `<text x="16" y="%d" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			(marginT+height-marginB)/2, (marginT+height-marginB)/2, xmlEscape(yLabel))
	}
}

func legend(b *strings.Builder, idx int, name, color string) {
	x := marginL + 10 + (idx%3)*170
	y := marginT - 8 + (idx/3)*16
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", x, y-9, color)
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", x+14, y, xmlEscape(name))
}

func distinctX(series []Series) []float64 {
	seen := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			seen[x] = true
		}
	}
	out := make([]float64, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Float64s(out)
	if len(out) > 12 { // thin dense axes
		step := len(out) / 12
		var thin []float64
		for i := 0; i < len(out); i += step + 1 {
			thin = append(thin, out[i])
		}
		out = thin
	}
	return out
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000 || (av < 0.01 && av > 0):
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
