package viz

import (
	"encoding/xml"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, svg[:min(400, len(svg))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestLineChartBasic(t *testing.T) {
	svg := LineChart("runtime", "users", "seconds", []Series{
		{Name: "OPT", X: []float64{10, 20, 30}, Y: []float64{0.01, 1, 30}},
		{Name: "SoCL", X: []float64{10, 20, 30}, Y: []float64{0.001, 0.002, 0.003}},
	}, false)
	wellFormed(t, svg)
	if c := strings.Count(svg, "<polyline"); c != 2 {
		t.Fatalf("polylines = %d, want 2", c)
	}
	if !strings.Contains(svg, "OPT") || !strings.Contains(svg, "SoCL") {
		t.Fatal("legend names missing")
	}
	if !strings.Contains(svg, "runtime") {
		t.Fatal("title missing")
	}
}

func TestLineChartLogScale(t *testing.T) {
	svg := LineChart("log", "x", "y", []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{0.001, 1, 1000}},
	}, true)
	wellFormed(t, svg)
	// Log ticks should include a large-magnitude formatted label.
	if !strings.Contains(svg, "e+") && !strings.Contains(svg, "1000") {
		t.Fatalf("log ticks look wrong:\n%s", svg)
	}
}

func TestLineChartHandlesNonPositiveOnLog(t *testing.T) {
	svg := LineChart("log", "x", "y", []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{0, 10}},
	}, true)
	wellFormed(t, svg)
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatal("NaN/Inf leaked into SVG")
	}
}

func TestLineChartEmpty(t *testing.T) {
	svg := LineChart("empty", "x", "y", nil, false)
	wellFormed(t, svg)
}

func TestLineChartConstantSeries(t *testing.T) {
	svg := LineChart("const", "x", "y", []Series{
		{Name: "a", X: []float64{1, 1}, Y: []float64{5, 5}},
	}, false)
	wellFormed(t, svg)
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN from degenerate ranges")
	}
}

func TestGroupedBarChart(t *testing.T) {
	svg := GroupedBarChart("objective", "value", []string{"80", "120"}, []Series{
		{Name: "RP", Y: []float64{4000, 4100}},
		{Name: "SoCL", Y: []float64{3100, 3200}},
	})
	wellFormed(t, svg)
	if c := strings.Count(svg, "<rect"); c < 5 { // bg + 4 bars + legends
		t.Fatalf("rects = %d", c)
	}
	if !strings.Contains(svg, "80") || !strings.Contains(svg, "RP") {
		t.Fatal("labels missing")
	}
}

func TestGroupedBarChartZeroData(t *testing.T) {
	svg := GroupedBarChart("z", "v", []string{"a"}, []Series{{Name: "s", Y: []float64{0}}})
	wellFormed(t, svg)
}

func TestXMLEscape(t *testing.T) {
	svg := LineChart(`a<b>&"c"`, "x", "y", []Series{
		{Name: "s<1>", X: []float64{1}, Y: []float64{1}},
	}, false)
	wellFormed(t, svg)
	if strings.Contains(svg, "a<b>") {
		t.Fatal("title not escaped")
	}
}

// Property: arbitrary finite data never produces malformed SVG or NaN
// coordinates.
func TestChartsRobustProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := stats.NewRand(seed)
		n := 2 + r.Intn(10)
		s := Series{Name: "s"}
		for i := 0; i < n; i++ {
			s.X = append(s.X, r.Float64()*100-50)
			s.Y = append(s.Y, r.Float64()*1e6-5e5)
		}
		svg := LineChart("t", "x", "y", []Series{s}, r.Float64() < 0.5)
		if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
			return false
		}
		dec := xml.NewDecoder(strings.NewReader(svg))
		for {
			if _, err := dec.Token(); err != nil {
				return err.Error() == "EOF"
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
